// Epoch-based asynchronous group commit (docs/group_commit.md):
//  * RedoLog::CommitAsync / WalManager::CommitFlushAsync park the caller's
//    ack on an epoch; one leader flush covers the batch and fires exactly
//    the covered acks — an acked-OK-but-lost commit is impossible, and
//    Stop() without a flush resolves every parked ack non-OK.
//  * The strict non-group eager path never advances durable_lsn_ past bytes
//    actually on the device: a failed per-commit fsync leaves a hole that a
//    later successful fsync of a HIGHER lsn must not paper over.
//  * TransactionService async_ack stamps done_ns at commit-ack time, so the
//    epoch wait shows up in server.latency_ns (what the tuner minimizes).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "common/work.h"
#include "engine/factory.h"
#include "engine/mysqlmini.h"
#include "engine/recovery.h"
#include "log/redo_log.h"
#include "pg/wal.h"
#include "server/service.h"

namespace tdp {
namespace {

SimDiskConfig FastDisk() {
  SimDiskConfig cfg;
  cfg.base_latency_ns = 20000;
  cfg.sigma = 0.1;
  cfg.flush_barrier_ns = 10000;
  return cfg;
}

std::vector<log::RedoOp> OneOp(uint64_t key) {
  std::vector<log::RedoOp> ops;
  ops.push_back(log::RedoOp{log::RedoOp::Kind::kPut, /*table=*/1, key,
                            storage::Row{static_cast<int64_t>(key)}});
  return ops;
}

bool WaitFor(const std::function<bool()>& pred, int64_t timeout_ms = 10000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::yield();
  }
  return true;
}

/// Thread-safe ack recorder shared by the epoch tests.
struct AckLog {
  std::mutex mu;
  std::vector<Status> acks;
  std::atomic<int> fired{0};

  log::RedoLog::CommitAckFn Make() {
    return [this](const Status& s) {
      {
        std::lock_guard<std::mutex> g(mu);
        acks.push_back(s);
      }
      fired.fetch_add(1, std::memory_order_release);
    };
  }
  int ok_count() {
    std::lock_guard<std::mutex> g(mu);
    int n = 0;
    for (const Status& s : acks) n += s.ok() ? 1 : 0;
    return n;
  }
};

// --- RedoLog epoch commit ---------------------------------------------------

TEST(GroupCommitTest, RedoEpochFlushFiresAllParkedAcksOK) {
  SimDisk disk(FastDisk());
  log::RedoLogConfig cfg;
  cfg.policy = log::FlushPolicy::kEagerFlush;
  cfg.disk = &disk;
  cfg.async_commit = true;
  cfg.epoch_interval_ns = 200 * 1000;  // 200us epochs
  log::RedoLog log(cfg);
  log.Start();

  AckLog acks;
  constexpr int kCommits = 16;
  uint64_t max_lsn = 0;
  for (int i = 0; i < kCommits; ++i) {
    max_lsn = log.CommitAsync(static_cast<uint64_t>(i + 1), 256,
                              OneOp(static_cast<uint64_t>(i + 1)),
                              acks.Make());
  }
  ASSERT_TRUE(WaitFor([&] { return acks.fired.load() == kCommits; }))
      << "parked acks never fired; epoch thread stuck?";
  EXPECT_EQ(acks.ok_count(), kCommits);
  EXPECT_GE(log.durable_lsn(), max_lsn);
  EXPECT_EQ(log.stats().async_commits.load(), static_cast<uint64_t>(kCommits));
  EXPECT_GE(log.stats().epoch_flushes.load(), 1u);

  // Every acked commit is recoverable from the durable image.
  const auto recovered = log.RecoverCommitted();
  EXPECT_EQ(recovered.size(), static_cast<size_t>(kCommits));
}

TEST(GroupCommitTest, RedoStopWithoutFlushAcksWholeEpochNonOK) {
  SimDisk disk(FastDisk());
  log::RedoLogConfig cfg;
  cfg.policy = log::FlushPolicy::kEagerFlush;
  cfg.disk = &disk;
  cfg.async_commit = true;
  cfg.epoch_interval_ns = MillisToNanos(30000);  // epoch never trips in-test
  log::RedoLog log(cfg);
  log.Start();

  AckLog acks;
  for (int i = 0; i < 4; ++i) {
    log.CommitAsync(static_cast<uint64_t>(i + 1), 256,
                    OneOp(static_cast<uint64_t>(i + 1)), acks.Make());
  }
  EXPECT_EQ(acks.fired.load(), 0);  // nothing acked before the epoch
  log.Stop();
  // Stop() does not flush: the whole un-flushed epoch is lost atomically —
  // every parked ack fires, none of them OK, and recovery sees nothing.
  EXPECT_EQ(acks.fired.load(), 4);
  EXPECT_EQ(acks.ok_count(), 0);
  EXPECT_EQ(log.durable_lsn(), 0u);
  EXPECT_TRUE(log.SimulateCrash().empty());
  EXPECT_TRUE(log.RecoverCommitted().empty());
}

TEST(GroupCommitTest, RedoCommitAsyncWithoutEpochThreadAcksInline) {
  // async_commit off: CommitAsync degrades to a synchronous leader flush
  // with an inline ack that still reports exactly what is durable.
  SimDisk disk(FastDisk());
  log::RedoLogConfig cfg;
  cfg.policy = log::FlushPolicy::kEagerFlush;
  cfg.disk = &disk;
  log::RedoLog log(cfg);
  log.Start();

  AckLog acks;
  const uint64_t lsn = log.CommitAsync(7, 256, OneOp(7), acks.Make());
  EXPECT_EQ(acks.fired.load(), 1);  // no parking: ack fired before return
  EXPECT_EQ(acks.ok_count(), 1);
  EXPECT_GE(log.durable_lsn(), lsn);
}

// --- the strict-eager prefix-durability fix (satellite S2) ------------------

// The bug this pins: the non-group eager path used to do
// AtomicMax(&durable_lsn_, my_lsn) after its own fsync — but that fsync only
// covered THIS commit's bytes. If an earlier commit's fsync failed (its
// bytes went back to unwritten_bytes_), jumping durable to my_lsn declared a
// prefix durable that is not on disk, and CrashImage would resurrect frames
// that were never written.
TEST(GroupCommitTest, FailedEarlierFsyncHoldsDurableAtTheHole) {
  FaultInjector inj;
  inj.AddWriteError(/*start_ns=*/0, /*duration_ns=*/MillisToNanos(60000),
                    /*probability=*/1.0);
  SimDiskConfig disk_cfg;
  disk_cfg.base_latency_ns = 1000;
  disk_cfg.sigma = 0;
  disk_cfg.flush_barrier_ns = 0;
  disk_cfg.fault = &inj;
  SimDisk disk(disk_cfg);

  log::RedoLogConfig cfg;
  cfg.policy = log::FlushPolicy::kEagerFlush;
  cfg.group_commit = false;  // per-commit fsync
  cfg.fallback_lazy_on_stall = true;
  cfg.disk = &disk;
  cfg.io_retry.max_attempts = 2;
  cfg.io_retry.backoff_ns = 1000;
  log::RedoLog log(cfg);
  // No Start(): the flusher stays off so the hole cannot be healed behind
  // the assertions' back.

  inj.Arm();
  const uint64_t lsn1 = log.Commit(1, 256, OneOp(1));  // fsync fails
  EXPECT_EQ(lsn1, 1u);
  EXPECT_EQ(log.stats().degraded_commits.load(), 1u);
  EXPECT_EQ(log.durable_lsn(), 0u);

  inj.Disarm();  // device heals
  const uint64_t lsn2 = log.Commit(2, 256, OneOp(2));  // own fsync succeeds
  EXPECT_EQ(lsn2, 2u);
  // The fix: lsn2's completion is recorded but durable stays at the hole —
  // lsn1's bytes never reached the device.
  EXPECT_EQ(log.durable_lsn(), 0u);

  // The flusher (started for eager+fallback) covers the hole: its batch
  // flush writes ALL unwritten bytes, after which the whole prefix is
  // durable and both commits recover.
  log.Start();
  ASSERT_TRUE(WaitFor([&] { return log.durable_lsn() >= 2; }))
      << "flusher never covered the degraded commit's bytes";
  const auto recovered = log.RecoverCommitted();
  ASSERT_EQ(recovered.size(), 2u);
  EXPECT_EQ(recovered[0].lsn, 1u);
  EXPECT_EQ(recovered[1].lsn, 2u);
}

// --- WalManager epoch commit ------------------------------------------------

TEST(GroupCommitTest, WalEpochBarrierFiresAcksAcrossLogSets) {
  pg::WalConfig cfg;
  cfg.block_bytes = 512;
  cfg.num_log_sets = 2;
  cfg.disk = FastDisk();
  cfg.async_commit = true;
  cfg.epoch_interval_ns = 200 * 1000;
  pg::WalManager wal(cfg);
  wal.Start();

  AckLog acks;
  constexpr int kCommits = 8;
  for (int i = 0; i < kCommits; ++i) {
    const Status s =
        wal.CommitFlushAsync(static_cast<uint64_t>(i + 1), 300,
                             OneOp(static_cast<uint64_t>(i + 1)), acks.Make());
    ASSERT_TRUE(s.ok()) << s.ToString();
  }
  ASSERT_TRUE(WaitFor([&] { return acks.fired.load() == kCommits; }))
      << "parked acks never fired; epoch thread stuck?";
  EXPECT_EQ(acks.ok_count(), kCommits);
  EXPECT_EQ(wal.stats().async_commits.load(), static_cast<uint64_t>(kCommits));
  EXPECT_GE(wal.stats().epoch_flushes.load(), 1u);

  // Every acked commit recovers from the merged set images, in LSN order.
  std::vector<log::RecoveredTxn> out;
  const auto rr = pg::WalManager::RecoverCommitted(wal.CrashImages(), &out);
  EXPECT_TRUE(rr.status.ok()) << rr.status.ToString();
  ASSERT_EQ(out.size(), static_cast<size_t>(kCommits));
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_LT(out[i - 1].lsn, out[i].lsn);
  }
}

TEST(GroupCommitTest, WalStopWithoutBarrierAcksParkedCommitsNonOK) {
  pg::WalConfig cfg;
  cfg.block_bytes = 512;
  cfg.disk = FastDisk();
  cfg.async_commit = true;
  cfg.epoch_interval_ns = MillisToNanos(30000);
  pg::WalManager wal(cfg);
  wal.Start();

  AckLog acks;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(wal.CommitFlushAsync(static_cast<uint64_t>(i + 1), 300,
                                     OneOp(static_cast<uint64_t>(i + 1)),
                                     acks.Make())
                    .ok());
  }
  EXPECT_EQ(acks.fired.load(), 0);
  wal.Stop();
  EXPECT_EQ(acks.fired.load(), 3);
  EXPECT_EQ(acks.ok_count(), 0);
  std::vector<log::RecoveredTxn> out;
  const auto rr = pg::WalManager::RecoverCommitted(wal.CrashImages(), &out);
  EXPECT_TRUE(rr.status.ok());
  EXPECT_TRUE(out.empty());  // nothing acked OK, nothing recovered
}

// --- service async-ack latency (satellite S3) -------------------------------

// The torn-read this pins: server.latency_ns used to be observed with a
// done_ns stamped when the worker returned — before the epoch flush — so
// async commits' parking time was invisible to the tuner. done_ns must be
// stamped at ack time: with a 5ms epoch, a near-zero-work transaction's
// done - dispatch gap is dominated by the epoch wait.
TEST(GroupCommitTest, AsyncAckLatencyIncludesEpochWait) {
  engine::EngineConfig config;
  config.mysql.logical_redo = true;
  config.mysql.row_work_ns = 0;
  config.mysql.btree.level_work_ns = 0;
  config.mysql.data_disk.base_latency_ns = 0;
  config.mysql.data_disk.sigma = 0;
  config.mysql.log_disk.base_latency_ns = 1000;
  config.mysql.log_disk.sigma = 0;
  config.mysql.log_disk.flush_barrier_ns = 0;
  config.mysql.flush_policy = log::FlushPolicy::kEagerFlush;
  config.mysql.log_async_commit = true;
  config.mysql.log_epoch_interval_ns = MillisToNanos(5);
  auto db = engine::OpenDatabase(engine::EngineKind::kMySQLMini, config);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  const uint32_t table = db.value()->CreateTable("t", 64);
  db.value()->BulkUpsert(table, 1, storage::Row{0});

  server::ServiceConfig cfg;
  cfg.workers = 1;
  cfg.async_ack = true;
  server::TransactionService svc(db.value().get(), cfg);
  svc.Start();

  // First transaction synchronizes us just past an epoch boundary; the
  // second then commits early in a fresh epoch and must park for most of
  // the 5ms interval before its ack (and so its done_ns) fires.
  const server::Response warm = svc.Execute(
      [&](engine::Connection& c) { return c.Update(table, 1, 0, 1); });
  ASSERT_TRUE(warm.status.ok()) << warm.status.ToString();
  const server::Response r = svc.Execute(
      [&](engine::Connection& c) { return c.Update(table, 1, 0, 1); });
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_GE(r.done_ns - r.dispatch_ns, MillisToNanos(1))
      << "done_ns stamped before the epoch flush: the parking time the "
         "tuner must see is missing from server.latency_ns";

  svc.Shutdown();
  const server::TransactionService::Stats st = svc.stats();
  EXPECT_EQ(st.async_acks, 2u);
  EXPECT_EQ(st.sync_acks, 0u);
  EXPECT_EQ(st.async_acks + st.sync_acks, st.completed);
}

// The accounting invariant under a mixed async/sync run: every completed
// request is acked exactly once, through exactly one of the two paths.
TEST(GroupCommitTest, AsyncAndSyncAcksPartitionCompleted) {
  engine::EngineConfig config;
  config.mysql.logical_redo = true;
  config.mysql.row_work_ns = 0;
  config.mysql.btree.level_work_ns = 0;
  config.mysql.data_disk.base_latency_ns = 0;
  config.mysql.data_disk.sigma = 0;
  config.mysql.log_disk.base_latency_ns = 1000;
  config.mysql.log_disk.sigma = 0;
  config.mysql.log_disk.flush_barrier_ns = 0;
  config.mysql.log_async_commit = true;
  config.mysql.log_epoch_interval_ns = 200 * 1000;
  auto db = engine::OpenDatabase(engine::EngineKind::kMySQLMini, config);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  const uint32_t table = db.value()->CreateTable("t", 64);
  for (uint64_t k = 0; k < 8; ++k) {
    db.value()->BulkUpsert(table, k, storage::Row{0});
  }

  server::ServiceConfig cfg;
  cfg.workers = 4;
  cfg.async_ack = true;
  server::TransactionService svc(db.value().get(), cfg);
  svc.Start();

  std::atomic<uint64_t> callbacks{0};
  constexpr int kTxns = 200;
  for (int i = 0; i < kTxns; ++i) {
    ASSERT_TRUE(svc.Submit(
                       [&, i](engine::Connection& c) {
                         return c.Update(table,
                                         static_cast<uint64_t>(i % 8), 0, 1);
                       },
                       [&](const server::Response& r) {
                         EXPECT_TRUE(r.status.ok()) << r.status.ToString();
                         callbacks.fetch_add(1);
                       })
                    .ok());
  }
  svc.Shutdown();  // drains the queue AND the outstanding async acks

  EXPECT_EQ(callbacks.load(), static_cast<uint64_t>(kTxns));
  const server::TransactionService::Stats st = svc.stats();
  EXPECT_EQ(st.completed, static_cast<uint64_t>(kTxns));
  EXPECT_EQ(st.async_acks + st.sync_acks, st.completed);
  EXPECT_GT(st.async_acks, 0u);

  // Durability matched the acks: every OK'd update landed.
  auto conn = db.value()->Connect();
  ASSERT_TRUE(conn->Begin().ok());
  uint64_t total = 0;
  for (uint64_t k = 0; k < 8; ++k) {
    ASSERT_TRUE(conn->Select(table, k).ok());
    total += static_cast<uint64_t>(*conn->ReadColumn(table, k, 0));
  }
  ASSERT_TRUE(conn->Commit().ok());
  EXPECT_EQ(total, static_cast<uint64_t>(kTxns));
}

// --- the write-ahead checkpoint rule ----------------------------------------

// The bug this pins: the engines apply table effects BEFORE the log append,
// so a fuzzy snapshot reflects every assigned LSN — including async commits
// still parked on an epoch. Publishing such a snapshot while the log tail is
// volatile lets checkpoint+suffix recovery resurrect (or half-overwrite)
// transactions the crash then loses. TakeCheckpoint must force the log
// durable through the last assigned LSN before capturing, and the covered
// acks must still resolve OK.
TEST(GroupCommitTest, TakeCheckpointForcesParkedEpochDurable) {
  AckLog acks;  // must outlive the database: Stop() resolves parked acks
  engine::MySQLMiniConfig cfg;
  cfg.logical_redo = true;
  cfg.row_work_ns = 0;
  cfg.btree.level_work_ns = 0;
  cfg.flush_policy = log::FlushPolicy::kEagerFlush;
  cfg.log_async_commit = true;
  cfg.log_epoch_interval_ns = MillisToNanos(30000);  // epoch never trips
  auto db = std::make_unique<engine::MySQLMini>(cfg);
  const uint32_t table = db->CreateTable("t", 64);
  db->BulkUpsert(table, 1, storage::Row{0});

  auto conn = db->Connect();
  constexpr int kTxns = 4;
  for (int i = 0; i < kTxns; ++i) {
    ASSERT_TRUE(conn->Begin().ok());
    ASSERT_TRUE(conn->Update(table, 1, 0, 1).ok());
    ASSERT_TRUE(conn->CommitAsync(acks.Make()).ok());
  }
  ASSERT_EQ(acks.fired.load(), 0);  // all parked; nothing durable yet

  const Result<engine::Checkpoint> ckpt = db->TakeCheckpoint();
  ASSERT_TRUE(ckpt.ok()) << ckpt.status().ToString();
  // The force ran before capture: the stamp covers every assigned LSN and
  // the watermark reached it, so nothing in the snapshot is volatile.
  EXPECT_GE(ckpt.value().lsn, static_cast<uint64_t>(kTxns));
  EXPECT_GE(db->redo_log().durable_lsn(), ckpt.value().lsn);

  // The snapshot itself holds all four updates.
  int64_t snap_val = -1;
  for (const engine::CheckpointTable& t : ckpt.value().tables) {
    if (t.table_id != table) continue;
    for (const auto& [key, row] : t.rows) {
      if (key == 1) snap_val = row.Get(0);
    }
  }
  EXPECT_EQ(snap_val, kTxns);

  // Shutdown without an epoch flush: every parked commit is covered by the
  // forced watermark, so each ack fires exactly once, OK.
  conn.reset();
  db.reset();
  EXPECT_EQ(acks.fired.load(), kTxns);
  EXPECT_EQ(acks.ok_count(), kTxns);
}

}  // namespace
}  // namespace tdp
