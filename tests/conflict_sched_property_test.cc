// Conflict-predictive scheduling properties (docs/scheduling.md):
//
//  * No starvation: across 100 seeds of adversarial scores, a steered
//    admission pop never jumps an overdue eldest, never loses an entry, and
//    degenerates to plain eldest-first when everything is flagged.
//  * Grant order: under lock::SchedulerPolicy::kCPVATS the lock manager
//    grants waiters in (predicted weight desc, age, id) order — checked
//    against a single-threaded reference model over seeded footprints — and
//    degrades exactly to VATS without a scorer or without footprints.
//  * Accounting: under server::DispatchPolicy::kConflictAware the admission
//    identities stay exact and the sched.* counters obey
//    hits + false_positives == flagged, with steer_delayed == flagged.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/work.h"
#include "engine/factory.h"
#include "lock/lock_manager.h"
#include "sched/conflict_predictor.h"
#include "server/service.h"

namespace tdp {
namespace {

// --- AdmissionQueue steering: no starvation ---------------------------------

// The PopSteered guarantee, stated checkably: whenever any queued entry is
// past the age deadline, the eldest entry is too (ages are monotone in admit
// order), the eldest is always scanned first, and an overdue entry is
// acceptable before its score is even consulted — so the pop must return
// the eldest. A younger entry may dispatch first only while nothing is
// overdue, and only because its own score cleared the threshold.
TEST(ConflictSchedPropertyTest, SteeredPopNeverJumpsOverdueEldestAcross100Seeds) {
  const int64_t step = MillisToNanos(1);
  const int64_t max_delay = MillisToNanos(8);
  const double threshold = 1.0;
  for (uint64_t seed = 1; seed <= 100; ++seed) {
    Rng rng(seed);
    server::AdmissionQueue<int> q(server::DispatchPolicy::kConflictAware,
                                  4096);
    // Deterministic adversarial scores: most items flagged; every 5th seed
    // flags *everything* (the pure-fallback regime).
    const bool all_flagged = seed % 5 == 0;
    auto flagged = [&](int item) {
      return all_flagged ||
             (static_cast<uint64_t>(item) * 2654435761u + seed) % 10 < 7;
    };
    auto score = [&](int item) { return flagged(item) ? 2.0 : 0.0; };

    int64_t now = 0;
    int next_item = 0;
    const int total = 120;
    std::map<int64_t, int> shadow;  // admit_ns -> item (admits are distinct)
    std::vector<bool> dispatched(total, false);
    while (next_item < total || !q.empty()) {
      now += step;
      if (next_item < total && rng.Bernoulli(0.6)) {
        ASSERT_TRUE(q.Push(next_item, now));
        shadow.emplace(now, next_item);
        ++next_item;
      }
      if (q.empty()) continue;
      server::AdmissionQueue<int>::Entry e;
      int skips = 0;
      ASSERT_TRUE(q.PopSteered(&e, now, max_delay, threshold,
                               /*scan_limit=*/4, score,
                               [&](int) { ++skips; }));
      ASSERT_FALSE(shadow.empty());
      const auto eldest = *shadow.begin();
      if (now - eldest.first >= max_delay) {
        // An overdue eldest is never jumped.
        EXPECT_EQ(e.item, eldest.second)
            << "seed " << seed << ": overdue eldest was jumped";
      }
      if (e.item != eldest.second) {
        // A jump needs a clean score and a non-overdue eldest.
        EXPECT_LE(score(e.item), threshold);
        EXPECT_LT(now - eldest.first, max_delay);
      }
      if (all_flagged) {
        // Pure fallback: plain eldest-first, and nothing counts as skipped.
        EXPECT_EQ(e.item, eldest.second);
        EXPECT_EQ(skips, 0);
      }
      ASSERT_FALSE(dispatched[e.item]) << "double dispatch";
      dispatched[e.item] = true;
      shadow.erase(e.admit_ns);
    }
    // Every admitted item dispatched exactly once: no starvation, no loss.
    EXPECT_EQ(std::count(dispatched.begin(), dispatched.end(), true), total)
        << "seed " << seed;
    EXPECT_TRUE(shadow.empty());
  }
}

TEST(ConflictSchedPropertyTest, SteerSkipPreservesEldestTotalOrder) {
  // A skipped entry keeps its seq: after being jumped once it is still in
  // front of every same-admit entry behind it.
  server::AdmissionQueue<int> q(server::DispatchPolicy::kConflictAware, 64);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(q.Push(i, /*admit_ns=*/100));
  int skips = 0;
  server::AdmissionQueue<int>::Entry e;
  // Item 0 is flagged, item 1 clean: 1 dispatches, 0 is skipped (and only 0
  // was scanned past).
  ASSERT_TRUE(q.PopSteered(&e, /*now_ns=*/200, MillisToNanos(10), 1.0, 4,
                           [](int item) { return item == 0 ? 2.0 : 0.0; },
                           [&](int item) {
                             EXPECT_EQ(item, 0);
                             ++skips;
                           }));
  EXPECT_EQ(e.item, 1);
  EXPECT_EQ(skips, 1);
  // With scores clear, the skipped item is still first among the rest.
  for (int expect : {0, 2, 3}) {
    ASSERT_TRUE(q.PopSteered(&e, 300, MillisToNanos(10), 1.0, 4,
                             [](int) { return 0.0; }, [](int) {}));
    EXPECT_EQ(e.item, expect);
  }
  EXPECT_TRUE(q.empty());
}

// --- kCPVATS grant order vs. a reference model ------------------------------

constexpr lock::RecordId kRec{9, 7};

lock::LockManagerConfig LockConfig(lock::SchedulerPolicy p,
                                   lock::ConflictScorer* scorer) {
  lock::LockManagerConfig cfg;
  cfg.policy = p;
  cfg.wait_timeout_ns = MillisToNanos(5000);
  cfg.scorer = scorer;
  return cfg;
}

/// Stages waiters (id = index + 1) with forced births and declared
/// footprints behind a held X lock, releases, and returns ids in grant
/// order. Mirrors scheduler_policy_test's harness plus footprints.
std::vector<uint64_t> GrantOrder(
    lock::LockManagerConfig cfg,
    const std::vector<std::pair<int64_t, std::vector<uint64_t>>>& spec) {
  lock::LockManager lm(cfg);
  lock::TxnContext holder(1000);
  EXPECT_TRUE(lm.Lock(&holder, kRec, lock::LockMode::kX).ok());

  std::mutex order_mu;
  std::vector<uint64_t> order;
  const int64_t base = NowNanos();
  struct Waiter {
    std::unique_ptr<lock::TxnContext> txn;
    std::thread thread;
  };
  std::vector<Waiter> waiters(spec.size());
  for (size_t i = 0; i < spec.size(); ++i) {
    auto& w = waiters[i];
    w.txn = std::make_unique<lock::TxnContext>(i + 1);
    w.txn->birth_ns = base - spec[i].first;  // deterministic ages
    w.txn->footprint = spec[i].second;
    w.thread = std::thread([&, i] {
      Status s = lm.Lock(waiters[i].txn.get(), kRec, lock::LockMode::kX);
      EXPECT_TRUE(s.ok()) << s.ToString();
      {
        std::lock_guard<std::mutex> g(order_mu);
        order.push_back(waiters[i].txn->id);
      }
      SpinFor(100000);  // hold so exclusive grants cannot overlap-reorder
      lm.ReleaseAll(waiters[i].txn.get());
    });
    // Queue arrival order matches index order (the FCFS basis).
    while (lm.QueueDepths(kRec).second != i + 1) SpinFor(5000);
  }
  lm.ReleaseAll(&holder);
  for (auto& w : waiters) w.thread.join();
  return order;
}

TEST(ConflictSchedPropertyTest, CpVatsGrantsByPredictedWeightThenAge) {
  // Heats are distinct powers of two recorded at one instant, so lazy decay
  // scales every footprint score by a common factor and the reference
  // ordering is invariant under when the lock manager happens to sort.
  sched::PredictorConfig pcfg;
  pcfg.half_life_ns = MillisToNanos(10000);
  sched::ConflictPredictor pred(pcfg);
  const int64_t t0 = NowNanos();
  std::vector<uint64_t> hot;
  for (uint32_t k = 0; k < 4; ++k) {
    hot.push_back(sched::ConflictPredictor::Fingerprint(1, k));
    pred.RecordConflict(hot.back(), std::exp2(k + 1), t0);  // 2, 4, 8, 16
  }

  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    // Arrival order 1..5; births strictly decreasing in age so every
    // tie falls to the elder, never to thread timing.
    std::vector<std::pair<int64_t, std::vector<uint64_t>>> spec;
    for (int i = 0; i < 5; ++i) {
      std::vector<uint64_t> fp;
      for (uint64_t k = 0; k < hot.size(); ++k) {
        if (rng.Bernoulli(0.5)) fp.push_back(hot[k]);
      }
      spec.emplace_back(MillisToNanos(50) - MillisToNanos(5) * i, fp);
    }

    // Reference model: single-threaded sort by (weight desc, birth asc,
    // id asc) — the documented CP-VATS order.
    std::vector<size_t> idx(spec.size());
    std::iota(idx.begin(), idx.end(), 0);
    std::stable_sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
      const double wa = pred.FootprintScore(spec[a].second, t0);
      const double wb = pred.FootprintScore(spec[b].second, t0);
      if (wa != wb) return wa > wb;
      if (spec[a].first != spec[b].first) {
        return spec[a].first > spec[b].first;  // larger offset = elder
      }
      return a < b;
    });
    std::vector<uint64_t> expected;
    for (size_t i : idx) expected.push_back(i + 1);

    const auto order = GrantOrder(
        LockConfig(lock::SchedulerPolicy::kCPVATS, &pred), spec);
    EXPECT_EQ(order, expected) << "seed " << seed;
  }
}

TEST(ConflictSchedPropertyTest, CpVatsDegradesToVatsWithoutScorer) {
  // Births reversed against arrival order — VATS grants eldest-first 4,3,2,1.
  const std::vector<std::pair<int64_t, std::vector<uint64_t>>> spec = {
      {MillisToNanos(10), {}},
      {MillisToNanos(20), {}},
      {MillisToNanos(30), {}},
      {MillisToNanos(40), {}},
  };
  const auto no_scorer =
      GrantOrder(LockConfig(lock::SchedulerPolicy::kCPVATS, nullptr), spec);
  EXPECT_EQ(no_scorer, (std::vector<uint64_t>{4, 3, 2, 1}));

  // A scorer with no learned heat (all weights 0) must not disturb it.
  sched::ConflictPredictor pred;
  const auto zero_weights =
      GrantOrder(LockConfig(lock::SchedulerPolicy::kCPVATS, &pred), spec);
  EXPECT_EQ(zero_weights, (std::vector<uint64_t>{4, 3, 2, 1}));
}

// --- service-level steering: accounting + bounded delay ---------------------

std::unique_ptr<engine::Database> OpenFast() {
  engine::EngineConfig config;
  config.mysql.row_work_ns = 0;
  config.mysql.btree.level_work_ns = 0;
  config.mysql.data_disk.base_latency_ns = 0;
  config.mysql.data_disk.sigma = 0;
  config.mysql.log_disk.base_latency_ns = 0;
  config.mysql.log_disk.sigma = 0;
  config.mysql.log_disk.flush_barrier_ns = 0;
  auto db = engine::OpenDatabase(engine::EngineKind::kMySQLMini, config);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return std::move(db.value());
}

class Gate {
 public:
  void Open() {
    std::lock_guard<std::mutex> g(mu_);
    open_ = true;
    cv_.notify_all();
  }
  void Wait() {
    std::unique_lock<std::mutex> l(mu_);
    cv_.wait(l, [&] { return open_; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
};

TEST(ConflictSchedPropertyTest, SteeringCountsFlaggedHitsAndFalsePositivesExactly) {
  auto db = OpenFast();
  const uint32_t table = db->CreateTable("t", 64);
  for (uint64_t k = 0; k < 16; ++k) db->BulkUpsert(table, k, storage::Row{0});

  sched::PredictorConfig pcfg;
  pcfg.half_life_ns = MillisToNanos(10000);  // no meaningful decay in-test
  sched::ConflictPredictor pred(pcfg);
  const uint64_t hot = sched::ConflictPredictor::Fingerprint(table, 0);
  pred.RecordConflict(hot, 100.0, NowNanos());

  server::ServiceConfig cfg;
  cfg.workers = 2;
  cfg.max_queue_depth = 256;
  cfg.policy = server::DispatchPolicy::kConflictAware;
  cfg.predictor = &pred;
  // Deadline far beyond the test so every decision is score-based (the
  // overdue path gets its own test below).
  cfg.max_steer_delay_ns = MillisToNanos(500);
  cfg.steer_scan_limit = 4;

  const metrics::MetricsSnapshot before =
      metrics::Registry::Global().TakeSnapshot();
  server::TransactionService svc(db.get(), cfg);
  svc.Start();

  // Pin both workers: hold_gate parks a transaction that *declares* the hot
  // fingerprint (keeping it registered in-flight for the whole drain) but
  // touches row 8, so steered transactions never block on it. drain_gate
  // pins the second worker while the backlog is staged.
  Gate hold_gate, drain_gate;
  std::atomic<int> pinned{0};
  ASSERT_TRUE(svc.Submit([&](engine::Connection& c) {
                    pinned.fetch_add(1);
                    hold_gate.Wait();
                    return c.Update(table, 8, 0, 1);
                  },
                         {hot}, [](const server::Response&) {})
                  .ok());
  ASSERT_TRUE(svc.Submit([&](engine::Connection& c) {
                    pinned.fetch_add(1);
                    drain_gate.Wait();
                    return c.Update(table, 9, 0, 1);
                  })
                  .ok());
  while (pinned.load() < 2) std::this_thread::yield();

  // Backlog (eldest first): three hot-declaring transactions, then a clean
  // one. All write distinct non-conflicting rows — every flag is a false
  // positive by construction.
  std::mutex done_mu;
  std::vector<int> completion_order;
  std::atomic<uint64_t> callbacks{0};
  auto tracked_done = [&](int tag) {
    return [&, tag](const server::Response& r) {
      EXPECT_TRUE(r.status.ok()) << r.status.ToString();
      std::lock_guard<std::mutex> g(done_mu);
      completion_order.push_back(tag);
      callbacks.fetch_add(1);
    };
  };
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(svc.Submit(
                       [&, i](engine::Connection& c) {
                         return c.Update(table, 1 + static_cast<uint64_t>(i),
                                         0, 1);
                       },
                       {hot}, tracked_done(i))
                    .ok());
  }
  ASSERT_TRUE(svc.Submit(
                     [&](engine::Connection& c) {
                       return c.Update(table, 5, 0, 1);
                     },
                     {}, tracked_done(99))
                  .ok());

  // One worker drains the staged backlog while the hot pin stays in flight.
  drain_gate.Open();
  while (callbacks.load() < 4) std::this_thread::yield();
  hold_gate.Open();
  svc.Shutdown();

  // The clean transaction jumped all three flagged ones; the flagged ones
  // then dispatched via the all-flagged fallback, eldest-first.
  EXPECT_EQ(completion_order, (std::vector<int>{99, 0, 1, 2}));

  const server::TransactionService::Stats st = svc.stats();
  EXPECT_EQ(st.submitted, 6u);
  EXPECT_EQ(st.admitted + st.shed + st.rejected_recovering, st.submitted);
  EXPECT_EQ(st.completed + st.expired + st.drain_aborted, st.admitted);
  EXPECT_EQ(st.completed, 6u);
  EXPECT_EQ(st.steer_delayed, 3u);

  const metrics::MetricsSnapshot delta = metrics::MetricsSnapshot::Delta(
      before, metrics::Registry::Global().TakeSnapshot());
  EXPECT_EQ(delta.counter("sched.flagged"), 3u);
  EXPECT_EQ(delta.counter("sched.steer_delays"), 3u);
  EXPECT_EQ(delta.counter("server.steer_delayed"), 3u);
  // None of the steered transactions actually conflicted.
  EXPECT_EQ(delta.counter("sched.hits"), 0u);
  EXPECT_EQ(delta.counter("sched.false_positives"), 3u);
  EXPECT_EQ(delta.counter("sched.hits") + delta.counter("sched.false_positives"),
            delta.counter("sched.flagged"));
  EXPECT_GE(delta.counter("sched.predictions"), 4u);
}

TEST(ConflictSchedPropertyTest, OverdueFlaggedRequestDispatchesWithinDeadline) {
  auto db = OpenFast();
  const uint32_t table = db->CreateTable("t", 64);
  for (uint64_t k = 0; k < 32; ++k) db->BulkUpsert(table, k, storage::Row{0});

  sched::ConflictPredictor pred;
  const uint64_t hot = sched::ConflictPredictor::Fingerprint(table, 0);
  pred.RecordConflict(hot, 100.0, NowNanos());

  server::ServiceConfig cfg;
  cfg.workers = 2;
  cfg.max_queue_depth = 256;
  cfg.policy = server::DispatchPolicy::kConflictAware;
  cfg.predictor = &pred;
  cfg.max_steer_delay_ns = MillisToNanos(1);
  cfg.steer_scan_limit = 8;
  server::TransactionService svc(db.get(), cfg);
  svc.Start();

  Gate hold_gate, drain_gate;
  std::atomic<int> pinned{0};
  ASSERT_TRUE(svc.Submit([&](engine::Connection& c) {
                    pinned.fetch_add(1);
                    hold_gate.Wait();
                    return c.Update(table, 30, 0, 1);
                  },
                         {hot}, [](const server::Response&) {})
                  .ok());
  ASSERT_TRUE(svc.Submit([&](engine::Connection& c) {
                    pinned.fetch_add(1);
                    drain_gate.Wait();
                    return c.Update(table, 31, 0, 1);
                  })
                  .ok());
  while (pinned.load() < 2) std::this_thread::yield();

  // One flagged transaction in front of a stream of clean, slow ones. The
  // clean stream would win every score comparison forever; the age deadline
  // must force the flagged one through mid-stream.
  std::mutex done_mu;
  std::vector<int> completion_order;
  std::atomic<uint64_t> callbacks{0};
  auto tracked_done = [&](int tag) {
    return [&, tag](const server::Response& r) {
      EXPECT_TRUE(r.status.ok()) << r.status.ToString();
      std::lock_guard<std::mutex> g(done_mu);
      completion_order.push_back(tag);
      callbacks.fetch_add(1);
    };
  };
  ASSERT_TRUE(svc.Submit(
                     [&](engine::Connection& c) {
                       return c.Update(table, 1, 0, 1);
                     },
                     {hot}, tracked_done(0))
                  .ok());
  const int cleans = 10;
  for (int i = 0; i < cleans; ++i) {
    ASSERT_TRUE(svc.Submit(
                       [&, i](engine::Connection& c) {
                         SpinFor(300000);  // 300us: ages the flagged entry
                         return c.Update(table, 2 + static_cast<uint64_t>(i),
                                         0, 1);
                       },
                       {}, tracked_done(1 + i))
                    .ok());
  }

  drain_gate.Open();
  while (callbacks.load() < static_cast<uint64_t>(1 + cleans)) {
    std::this_thread::yield();
  }
  hold_gate.Open();
  svc.Shutdown();

  // Bounded delay: the flagged transaction did not run last — the deadline
  // pulled it ahead of at least the tail of the clean stream.
  ASSERT_EQ(completion_order.size(), static_cast<size_t>(1 + cleans));
  const auto pos = std::find(completion_order.begin(), completion_order.end(), 0);
  ASSERT_NE(pos, completion_order.end());
  EXPECT_LT(pos - completion_order.begin(),
            static_cast<std::ptrdiff_t>(completion_order.size() - 1))
      << "flagged request starved to the end of the queue";

  const server::TransactionService::Stats st = svc.stats();
  EXPECT_EQ(st.completed + st.expired + st.drain_aborted, st.admitted);
  EXPECT_EQ(st.completed, st.admitted);
}

TEST(ConflictSchedPropertyTest, RandomizedSteeringKeepsIdentitiesAcrossSeeds) {
  const metrics::MetricsSnapshot before =
      metrics::Registry::Global().TakeSnapshot();
  uint64_t flagged_total = 0;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    auto db = OpenFast();
    const uint32_t table = db->CreateTable("t", 64);
    for (uint64_t k = 0; k < 16; ++k) db->BulkUpsert(table, k, storage::Row{0});

    sched::ConflictPredictor pred;
    std::vector<uint64_t> hot;
    for (uint32_t k = 0; k < 4; ++k) {
      hot.push_back(sched::ConflictPredictor::Fingerprint(table, k));
      pred.RecordConflict(hot.back(), 10.0 + k, NowNanos());
    }

    server::ServiceConfig cfg;
    cfg.workers = 3;
    cfg.max_queue_depth = 128;
    cfg.policy = server::DispatchPolicy::kConflictAware;
    cfg.predictor = &pred;
    cfg.max_steer_delay_ns = MillisToNanos(1);
    cfg.steer_scan_limit = 4;
    server::TransactionService svc(db.get(), cfg);
    svc.Start();

    Rng rng(seed);
    std::atomic<uint64_t> callbacks{0};
    uint64_t admitted_by_test = 0;
    for (int i = 0; i < 80; ++i) {
      std::vector<uint64_t> fp;
      for (uint64_t f : hot) {
        if (rng.Bernoulli(0.4)) fp.push_back(f);
      }
      const uint64_t row = rng.Uniform(16);
      const Status s = svc.Submit(
          [&, row](engine::Connection& c) { return c.Update(table, row, 0, 1); },
          std::move(fp),
          [&](const server::Response&) { callbacks.fetch_add(1); });
      if (s.ok()) ++admitted_by_test;
    }
    svc.Shutdown();

    const server::TransactionService::Stats st = svc.stats();
    EXPECT_EQ(st.admitted, admitted_by_test) << "seed " << seed;
    EXPECT_EQ(st.admitted + st.shed + st.rejected_recovering, st.submitted);
    EXPECT_EQ(st.completed + st.expired + st.drain_aborted, st.admitted);
    EXPECT_EQ(callbacks.load(), st.admitted) << "one callback per admission";
    flagged_total += st.steer_delayed;
  }
  const metrics::MetricsSnapshot delta = metrics::MetricsSnapshot::Delta(
      before, metrics::Registry::Global().TakeSnapshot());
  // Every flagged request was classified exactly once at completion.
  EXPECT_EQ(delta.counter("sched.hits") + delta.counter("sched.false_positives"),
            delta.counter("sched.flagged"));
  EXPECT_EQ(delta.counter("sched.flagged"), flagged_total);
  EXPECT_GE(delta.counter("sched.steer_delays"), delta.counter("sched.flagged"));
}

}  // namespace
}  // namespace tdp
