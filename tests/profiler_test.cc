#include "tprofiler/profiler.h"

#include <gtest/gtest.h>

#include <thread>

#include "common/work.h"

namespace tdp::tprof {
namespace {

void Leaf() {
  TPROF_SCOPE("pt_leaf");
  SpinFor(50000);
}

void Mid() {
  TPROF_SCOPE("pt_mid");
  SpinFor(20000);
  Leaf();
}

void Root() {
  TPROF_SCOPE("pt_root");
  Mid();
  Leaf();
}

TEST(ProfilerTest, InactiveProbesRecordNothing) {
  Profiler& p = Profiler::Instance();
  ASSERT_FALSE(p.active());
  Root();  // must be safe without a session
  SUCCEED();
}

TEST(ProfilerTest, RecordsEnabledFunctionsOnly) {
  Profiler& p = Profiler::Instance();
  SessionConfig cfg;
  cfg.enabled = {"pt_root", "pt_leaf"};  // pt_mid NOT instrumented
  p.StartSession(cfg);
  {
    TxnScope txn;
    Root();
  }
  TraceData data = p.EndSession();
  ASSERT_EQ(data.intervals.size(), 1u);
  // Events: pt_root once, pt_leaf twice (one via pt_mid, one direct); both
  // leaf call sites collapse onto path root/leaf because mid is invisible.
  int roots = 0, leaves = 0;
  for (const Event& e : data.events) {
    const FuncId f = p.path_tree().Func(e.node);
    const std::string name = Registry::Instance().Name(f);
    if (name == "pt_root") ++roots;
    if (name == "pt_leaf") ++leaves;
    EXPECT_NE(name, "pt_mid");
  }
  EXPECT_EQ(roots, 1);
  EXPECT_EQ(leaves, 2);
}

TEST(ProfilerTest, PathsDistinguishEnabledAncestors) {
  Profiler& p = Profiler::Instance();
  SessionConfig cfg;
  cfg.enabled = {"pt_root", "pt_mid", "pt_leaf"};
  p.StartSession(cfg);
  {
    TxnScope txn;
    Root();
  }
  TraceData data = p.EndSession();
  bool saw_leaf_under_mid = false, saw_leaf_under_root = false;
  for (const Event& e : data.events) {
    const std::string path = p.path_tree().PathString(e.node);
    if (path == "pt_root/pt_mid/pt_leaf") saw_leaf_under_mid = true;
    if (path == "pt_root/pt_leaf") saw_leaf_under_root = true;
  }
  EXPECT_TRUE(saw_leaf_under_mid);
  EXPECT_TRUE(saw_leaf_under_root);
}

TEST(ProfilerTest, DiscoversCallEdges) {
  Profiler& p = Profiler::Instance();
  SessionConfig cfg;
  cfg.enabled = {"pt_root"};
  cfg.discover_edges = true;
  p.StartSession(cfg);
  {
    TxnScope txn;
    Root();
  }
  p.EndSession();
  Registry& r = Registry::Instance();
  const auto root_kids = r.Children(r.Lookup("pt_root"));
  // Root's direct probe children: pt_mid and pt_leaf.
  EXPECT_EQ(root_kids.size(), 2u);
  const auto mid_kids = r.Children(r.Lookup("pt_mid"));
  EXPECT_EQ(mid_kids.size(), 1u);
}

TEST(ProfilerTest, EventDurationsAreSane) {
  Profiler& p = Profiler::Instance();
  SessionConfig cfg;
  cfg.enabled = {"pt_leaf"};
  p.StartSession(cfg);
  {
    TxnScope txn;
    Leaf();
  }
  TraceData data = p.EndSession();
  ASSERT_EQ(data.events.size(), 1u);
  const int64_t dur = data.events[0].end_ns - data.events[0].start_ns;
  EXPECT_GE(dur, 40000);   // at least the spin time
  EXPECT_LT(dur, 50000000);
}

TEST(ProfilerTest, EventsOutsideTxnHaveZeroTxn) {
  Profiler& p = Profiler::Instance();
  SessionConfig cfg;
  cfg.enabled = {"pt_leaf"};
  p.StartSession(cfg);
  Leaf();  // no TxnScope
  TraceData data = p.EndSession();
  ASSERT_EQ(data.events.size(), 1u);
  EXPECT_EQ(data.events[0].txn, 0u);
}

TEST(ProfilerTest, IntervalsFromMultipleThreadsMerge) {
  Profiler& p = Profiler::Instance();
  SessionConfig cfg;
  cfg.enabled = {"pt_leaf"};
  p.StartSession(cfg);
  constexpr uint64_t kTxn = 777777;
  p.IntervalBegin(kTxn);
  SpinFor(10000);
  p.IntervalEnd();
  std::thread t([&] {
    p.IntervalBegin(kTxn);
    Leaf();
    p.IntervalEnd();
  });
  t.join();
  TraceData data = p.EndSession();
  int intervals = 0;
  for (const TxnInterval& iv : data.intervals) {
    if (iv.txn == kTxn) ++intervals;
  }
  EXPECT_EQ(intervals, 2);
}

TEST(ProfilerTest, DTraceModeChargesPerEventCost) {
  Profiler& p = Profiler::Instance();
  auto run_once = [&](ProbeCost cost_model) {
    SessionConfig cfg;
    cfg.enabled = {"pt_leaf"};
    cfg.cost_model = cost_model;
    cfg.dtrace_event_cost_ns = 2000000;  // 2ms per event: unmistakable
    p.StartSession(cfg);
    const int64_t t0 = NowNanos();
    {
      TxnScope txn;
      Leaf();
    }
    const int64_t elapsed = NowNanos() - t0;
    p.EndSession();
    return elapsed;
  };
  const int64_t native = run_once(ProbeCost::kNative);
  const int64_t dtrace = run_once(ProbeCost::kDTraceLike);
  EXPECT_GT(dtrace, native + 3000000);  // 2 events x 2ms
}

TEST(ProfilerTest, SessionRestartClearsState) {
  Profiler& p = Profiler::Instance();
  SessionConfig cfg;
  cfg.enabled = {"pt_leaf"};
  p.StartSession(cfg);
  {
    TxnScope txn;
    Leaf();
  }
  TraceData first = p.EndSession();
  EXPECT_FALSE(first.events.empty());

  p.StartSession(cfg);
  TraceData second = p.EndSession();
  EXPECT_TRUE(second.events.empty());
  EXPECT_TRUE(second.intervals.empty());
}

}  // namespace
}  // namespace tdp::tprof
