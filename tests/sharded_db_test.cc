// ShardedDatabase live behavior: hash routing, the single-shard fast path,
// cross-shard 2PC commit/abort classification, read-only release, pin
// overrides, and gtid assignment (docs/sharding.md).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "engine/sharded_db.h"

namespace tdp::engine {
namespace {

ShardedDatabaseConfig FastConfig(int num_shards) {
  ShardedDatabaseConfig cfg;
  cfg.num_shards = num_shards;
  cfg.shard.logical_redo = true;
  cfg.shard.row_work_ns = 0;
  cfg.shard.btree.level_work_ns = 0;
  cfg.shard.data_disk.base_latency_ns = 0;
  cfg.shard.data_disk.sigma = 0;
  cfg.shard.log_disk.base_latency_ns = 0;
  cfg.shard.log_disk.sigma = 0;
  cfg.shard.log_disk.flush_barrier_ns = 0;
  // Cross-shard cycles are invisible to per-shard detectors; timeouts break
  // them (the factory enforces this for kSharded, tests keep the habit).
  cfg.shard.lock.wait_timeout_ns = MillisToNanos(200);
  return cfg;
}

/// First key (>= from) owned by `shard`.
uint64_t KeyOn(const ShardedDatabase& db, uint32_t table, uint32_t shard,
               uint64_t from = 0) {
  for (uint64_t k = from;; ++k) {
    if (db.router().ShardOf(table, k) == shard) return k;
  }
}

uint64_t CounterValue(const char* name) {
  return metrics::Registry::Global().GetCounter(name)->value();
}

TEST(ShardedDbTest, RoutesRowsToOwnerShardsAndSumsCounts) {
  ShardedDatabase db(FastConfig(4));
  const uint32_t t = db.CreateTable("acct", 64);
  for (uint64_t k = 0; k < 64; ++k) db.BulkUpsert(t, k, storage::Row{1});
  EXPECT_EQ(db.TableRowCount(t), 64u);
  uint64_t per_shard = 0;
  for (int s = 0; s < db.num_shards(); ++s) {
    const uint64_t n = db.shard(s)->TableRowCount(t);
    EXPECT_GT(n, 0u) << "shard " << s << " owns no rows out of 64";
    per_shard += n;
  }
  EXPECT_EQ(per_shard, 64u);
  // Every row readable through the routed connection.
  auto conn = db.Connect();
  ASSERT_TRUE(conn->Begin().ok());
  for (uint64_t k = 0; k < 64; ++k) EXPECT_EQ(*conn->ReadColumn(t, k, 0), 1);
  ASSERT_TRUE(conn->Commit().ok());
}

TEST(ShardedDbTest, SingleShardCommitTakesFastPath) {
  ShardedDatabase db(FastConfig(4));
  const uint32_t t = db.CreateTable("acct", 64);
  const uint64_t k0 = KeyOn(db, t, 0);
  const uint64_t k0b = KeyOn(db, t, 0, k0 + 1);
  db.BulkUpsert(t, k0, storage::Row{10});
  db.BulkUpsert(t, k0b, storage::Row{20});

  const uint64_t single0 = CounterValue("shard.single_shard_txns");
  const uint64_t coord0 = CounterValue("2pc.coordinated");
  auto conn = db.Connect();
  ASSERT_TRUE(conn->Begin().ok());
  ASSERT_TRUE(conn->Update(t, k0, 0, 1).ok());
  ASSERT_TRUE(conn->Update(t, k0b, 0, 1).ok());
  ASSERT_TRUE(conn->Commit().ok());
  EXPECT_EQ(CounterValue("shard.single_shard_txns") - single0, 1u);
  EXPECT_EQ(CounterValue("2pc.coordinated") - coord0, 0u);
}

TEST(ShardedDbTest, CrossShardCommitRuns2PCAndApplies) {
  ShardedDatabase db(FastConfig(2));
  const uint32_t t = db.CreateTable("acct", 64);
  const uint64_t k0 = KeyOn(db, t, 0);
  const uint64_t k1 = KeyOn(db, t, 1);
  db.BulkUpsert(t, k0, storage::Row{10});
  db.BulkUpsert(t, k1, storage::Row{20});

  const uint64_t cross0 = CounterValue("shard.cross_shard_txns");
  const uint64_t coord0 = CounterValue("2pc.coordinated");
  const uint64_t prep0 = CounterValue("2pc.prepared");
  const uint64_t dec0 = CounterValue("2pc.decisions");
  auto conn = db.Connect();
  ASSERT_TRUE(conn->Begin().ok());
  ASSERT_TRUE(conn->Update(t, k0, 0, 5).ok());
  ASSERT_TRUE(conn->Update(t, k1, 0, 7).ok());
  ASSERT_TRUE(conn->Commit().ok());
  EXPECT_EQ(CounterValue("shard.cross_shard_txns") - cross0, 1u);
  EXPECT_EQ(CounterValue("2pc.coordinated") - coord0, 1u);
  EXPECT_EQ(CounterValue("2pc.prepared") - prep0, 1u);
  EXPECT_EQ(CounterValue("2pc.decisions") - dec0, 1u);

  auto check = db.Connect();
  ASSERT_TRUE(check->Begin().ok());
  EXPECT_EQ(*check->ReadColumn(t, k0, 0), 15);
  EXPECT_EQ(*check->ReadColumn(t, k1, 0), 27);
  ASSERT_TRUE(check->Commit().ok());
}

TEST(ShardedDbTest, ReadOnlyCrossShardCommitSkips2PC) {
  ShardedDatabase db(FastConfig(2));
  const uint32_t t = db.CreateTable("acct", 64);
  const uint64_t k0 = KeyOn(db, t, 0);
  const uint64_t k1 = KeyOn(db, t, 1);
  db.BulkUpsert(t, k0, storage::Row{1});
  db.BulkUpsert(t, k1, storage::Row{2});

  const uint64_t cross0 = CounterValue("shard.cross_shard_txns");
  const uint64_t coord0 = CounterValue("2pc.coordinated");
  auto conn = db.Connect();
  ASSERT_TRUE(conn->Begin().ok());
  ASSERT_TRUE(conn->Select(t, k0).ok());
  ASSERT_TRUE(conn->Select(t, k1).ok());
  ASSERT_TRUE(conn->Commit().ok());
  // Classified cross-shard, but nothing durable to coordinate: no round.
  EXPECT_EQ(CounterValue("shard.cross_shard_txns") - cross0, 1u);
  EXPECT_EQ(CounterValue("2pc.coordinated") - coord0, 0u);
}

TEST(ShardedDbTest, RollbackUndoesEveryShard) {
  ShardedDatabase db(FastConfig(2));
  const uint32_t t = db.CreateTable("acct", 64);
  const uint64_t k0 = KeyOn(db, t, 0);
  const uint64_t k1 = KeyOn(db, t, 1);
  db.BulkUpsert(t, k0, storage::Row{10});
  db.BulkUpsert(t, k1, storage::Row{20});

  auto conn = db.Connect();
  ASSERT_TRUE(conn->Begin().ok());
  ASSERT_TRUE(conn->Update(t, k0, 0, 5).ok());
  ASSERT_TRUE(conn->Update(t, k1, 0, 7).ok());
  conn->Rollback();

  auto check = db.Connect();
  ASSERT_TRUE(check->Begin().ok());
  EXPECT_EQ(*check->ReadColumn(t, k0, 0), 10);
  EXPECT_EQ(*check->ReadColumn(t, k1, 0), 20);
  ASSERT_TRUE(check->Commit().ok());
}

TEST(ShardedDbTest, EmptyCommitIsOk) {
  ShardedDatabase db(FastConfig(2));
  db.CreateTable("acct", 64);
  auto conn = db.Connect();
  ASSERT_TRUE(conn->Begin().ok());
  EXPECT_TRUE(conn->Commit().ok());
}

TEST(ShardedDbTest, PinOverridesHashAndUnpinReverts) {
  ShardedDatabase db(FastConfig(4));
  const uint32_t t = db.CreateTable("acct", 64);
  const uint64_t k = KeyOn(db, t, 0);
  ASSERT_EQ(db.router().ShardOf(t, k), 0u);

  db.router().Pin(t, k, 3);
  EXPECT_EQ(db.router().ShardOf(t, k), 3u);
  EXPECT_EQ(db.router().pinned(), 1u);
  // A row upserted after pinning lands — and is found — on the pinned shard.
  db.BulkUpsert(t, k, storage::Row{9});
  EXPECT_EQ(db.shard(3)->TableRowCount(t), 1u);
  auto conn = db.Connect();
  ASSERT_TRUE(conn->Begin().ok());
  EXPECT_EQ(*conn->ReadColumn(t, k, 0), 9);
  ASSERT_TRUE(conn->Commit().ok());

  EXPECT_TRUE(db.router().Unpin(t, k));
  EXPECT_EQ(db.router().ShardOf(t, k), 0u);
  EXPECT_FALSE(db.router().Unpin(t, k));
}

TEST(ShardedDbTest, ShardMaskCoversDeclaredFootprint) {
  ShardedDatabase db(FastConfig(4));
  const uint32_t t = db.CreateTable("acct", 64);
  const uint64_t k0 = KeyOn(db, t, 0);
  const uint64_t k2 = KeyOn(db, t, 2);
  const std::vector<uint64_t> fp = {
      sched::ConflictPredictor::Fingerprint(t, k0),
      sched::ConflictPredictor::Fingerprint(t, k2)};
  EXPECT_EQ(db.router().ShardMaskOf(fp), (uint64_t{1} << 0) | (uint64_t{1} << 2));
  EXPECT_EQ(db.router().ShardMaskOf({}), 0u);
}

TEST(ShardedDbTest, GtidsAreDistinctAcrossConnections) {
  ShardedDatabase db(FastConfig(2));
  db.CreateTable("acct", 64);
  auto a = db.Connect();
  auto b = db.Connect();
  ASSERT_TRUE(a->Begin().ok());
  ASSERT_TRUE(b->Begin().ok());
  EXPECT_NE(a->current_txn_id(), 0u);
  EXPECT_NE(a->current_txn_id(), b->current_txn_id());
  ASSERT_TRUE(a->Commit().ok());
  ASSERT_TRUE(b->Commit().ok());
}

TEST(ShardedDbTest, AsyncCommitFallsBackInlineForCrossShard) {
  ShardedDatabase db(FastConfig(2));
  const uint32_t t = db.CreateTable("acct", 64);
  const uint64_t k0 = KeyOn(db, t, 0);
  const uint64_t k1 = KeyOn(db, t, 1);
  db.BulkUpsert(t, k0, storage::Row{0});
  db.BulkUpsert(t, k1, storage::Row{0});
  auto conn = db.Connect();
  ASSERT_TRUE(conn->Begin().ok());
  ASSERT_TRUE(conn->Update(t, k0, 0, 1).ok());
  ASSERT_TRUE(conn->Update(t, k1, 0, 1).ok());
  bool acked = false;
  ASSERT_TRUE(conn->CommitAsync([&](const Status& s) {
    EXPECT_TRUE(s.ok());
    acked = true;
  }).ok());
  EXPECT_TRUE(acked);
}

}  // namespace
}  // namespace tdp::engine
