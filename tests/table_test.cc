#include "storage/table.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace tdp::storage {
namespace {

TEST(RowTest, GetSetAutoResizes) {
  Row r;
  EXPECT_EQ(r.Get(3), 0);
  r.Set(3, 42);
  EXPECT_EQ(r.Get(3), 42);
  EXPECT_EQ(r.Get(0), 0);
}

TEST(TableTest, InsertReadRoundTrip) {
  Table t(1, "t");
  ASSERT_TRUE(t.Insert(5, Row{10, 20}).ok());
  Result<Row> r = t.Read(5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->Get(0), 10);
  EXPECT_EQ(r->Get(1), 20);
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(TableTest, DuplicateInsertFails) {
  Table t(1, "t");
  ASSERT_TRUE(t.Insert(5, Row{}).ok());
  EXPECT_TRUE(t.Insert(5, Row{}).IsInvalidArgument());
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(TableTest, UpsertReplaces) {
  Table t(1, "t");
  t.Upsert(5, Row{1});
  t.Upsert(5, Row{2});
  EXPECT_EQ(t.row_count(), 1u);
  EXPECT_EQ(t.Read(5)->Get(0), 2);
}

TEST(TableTest, ReadMissingIsNotFound) {
  Table t(1, "t");
  EXPECT_TRUE(t.Read(99).status().IsNotFound());
  EXPECT_FALSE(t.Exists(99));
}

TEST(TableTest, UpdateAppliesFunction) {
  Table t(1, "t");
  ASSERT_TRUE(t.Insert(1, Row{100}).ok());
  ASSERT_TRUE(t.Update(1, [](Row* r) { r->Set(0, r->Get(0) + 5); }).ok());
  EXPECT_EQ(t.Read(1)->Get(0), 105);
}

TEST(TableTest, UpdateMissingIsNotFound) {
  Table t(1, "t");
  EXPECT_TRUE(t.Update(1, [](Row*) {}).IsNotFound());
}

TEST(TableTest, DeleteRemoves) {
  Table t(1, "t");
  ASSERT_TRUE(t.Insert(1, Row{}).ok());
  ASSERT_TRUE(t.Delete(1).ok());
  EXPECT_FALSE(t.Exists(1));
  EXPECT_EQ(t.row_count(), 0u);
  EXPECT_TRUE(t.Delete(1).IsNotFound());
}

TEST(TableTest, PageMappingGroupsConsecutiveKeys) {
  Table t(3, "t", 64);
  EXPECT_EQ(t.PageOf(0).page_no, 0u);
  EXPECT_EQ(t.PageOf(63).page_no, 0u);
  EXPECT_EQ(t.PageOf(64).page_no, 1u);
  EXPECT_EQ(t.PageOf(0).space_id, 3u);
}

TEST(TableTest, RowsPerPageZeroClampedToOne) {
  Table t(1, "t", 0);
  EXPECT_EQ(t.rows_per_page(), 1u);
}

TEST(TableTest, ConcurrentUpdatesAreAtomic) {
  Table t(1, "t");
  ASSERT_TRUE(t.Insert(1, Row{0}).ok());
  constexpr int kThreads = 8, kIters = 10000;
  std::vector<std::thread> ts;
  for (int i = 0; i < kThreads; ++i) {
    ts.emplace_back([&] {
      for (int j = 0; j < kIters; ++j) {
        ASSERT_TRUE(t.Update(1, [](Row* r) { r->Set(0, r->Get(0) + 1); }).ok());
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(t.Read(1)->Get(0), kThreads * kIters);
}

TEST(TableTest, ConcurrentInsertDisjointKeys) {
  Table t(1, "t");
  constexpr int kThreads = 8, kPer = 5000;
  std::vector<std::thread> ts;
  for (int i = 0; i < kThreads; ++i) {
    ts.emplace_back([&, i] {
      for (int j = 0; j < kPer; ++j) {
        ASSERT_TRUE(t.Insert(uint64_t(i) * kPer + j, Row{}).ok());
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(t.row_count(), uint64_t{kThreads * kPer});
}

}  // namespace
}  // namespace tdp::storage
