#include "lock/lock_mode.h"

#include <gtest/gtest.h>

namespace tdp::lock {
namespace {

constexpr LockMode kAll[] = {LockMode::kIS, LockMode::kIX, LockMode::kS,
                             LockMode::kX};

TEST(LockModeTest, CompatibilityMatrixIsSymmetric) {
  for (LockMode a : kAll) {
    for (LockMode b : kAll) {
      EXPECT_EQ(Compatible(a, b), Compatible(b, a))
          << LockModeName(a) << " vs " << LockModeName(b);
    }
  }
}

TEST(LockModeTest, SharedCompatibleWithShared) {
  EXPECT_TRUE(Compatible(LockMode::kS, LockMode::kS));
  EXPECT_TRUE(Compatible(LockMode::kIS, LockMode::kS));
  EXPECT_TRUE(Compatible(LockMode::kIS, LockMode::kIS));
  EXPECT_TRUE(Compatible(LockMode::kIX, LockMode::kIX));
}

TEST(LockModeTest, ExclusiveConflictsWithEverything) {
  for (LockMode m : kAll) {
    EXPECT_FALSE(Compatible(LockMode::kX, m)) << LockModeName(m);
  }
}

TEST(LockModeTest, IntentExclusiveConflictsWithShared) {
  EXPECT_FALSE(Compatible(LockMode::kIX, LockMode::kS));
  EXPECT_FALSE(Compatible(LockMode::kS, LockMode::kIX));
}

TEST(LockModeTest, CoversIsReflexive) {
  for (LockMode m : kAll) EXPECT_TRUE(Covers(m, m));
}

TEST(LockModeTest, ExclusiveCoversAll) {
  for (LockMode m : kAll) EXPECT_TRUE(Covers(LockMode::kX, m));
}

TEST(LockModeTest, SharedDoesNotCoverExclusive) {
  EXPECT_FALSE(Covers(LockMode::kS, LockMode::kX));
  EXPECT_FALSE(Covers(LockMode::kIS, LockMode::kX));
  EXPECT_FALSE(Covers(LockMode::kIX, LockMode::kX));
}

TEST(LockModeTest, SupremumOfIncomparableIsExclusive) {
  EXPECT_EQ(Supremum(LockMode::kS, LockMode::kIX), LockMode::kX);
  EXPECT_EQ(Supremum(LockMode::kIX, LockMode::kS), LockMode::kX);
}

TEST(LockModeTest, SupremumCoversBothArguments) {
  for (LockMode a : kAll) {
    for (LockMode b : kAll) {
      const LockMode s = Supremum(a, b);
      EXPECT_TRUE(Covers(s, a));
      EXPECT_TRUE(Covers(s, b));
    }
  }
}

TEST(LockModeTest, Names) {
  EXPECT_STREQ(LockModeName(LockMode::kS), "S");
  EXPECT_STREQ(LockModeName(LockMode::kX), "X");
  EXPECT_STREQ(LockModeName(LockMode::kIS), "IS");
  EXPECT_STREQ(LockModeName(LockMode::kIX), "IX");
}

}  // namespace
}  // namespace tdp::lock
