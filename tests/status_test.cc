#include "common/status.h"

#include <gtest/gtest.h>

namespace tdp {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesSetCode) {
  EXPECT_TRUE(Status::NotFound().IsNotFound());
  EXPECT_TRUE(Status::Deadlock().IsDeadlock());
  EXPECT_TRUE(Status::LockTimeout().IsLockTimeout());
  EXPECT_TRUE(Status::Aborted().IsAborted());
  EXPECT_TRUE(Status::Busy().IsBusy());
  EXPECT_TRUE(Status::InvalidArgument().IsInvalidArgument());
  EXPECT_TRUE(Status::Corruption().IsCorruption());
  EXPECT_TRUE(Status::Overloaded().IsOverloaded());
  EXPECT_TRUE(Status::DataLoss().IsDataLoss());
  EXPECT_TRUE(Status::Unavailable().IsUnavailable());
  EXPECT_FALSE(Status::NotFound().ok());
}

TEST(StatusTest, DataLossIsDistinctFromCorruptionAndIoError) {
  // DataLoss is the post-hoc verdict (durable bytes failed their checksum);
  // Corruption/IOError are live-path failures. Recovery code branches on
  // the difference, so the codes must not alias.
  const Status s = Status::DataLoss("wal frame crc mismatch");
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(s.IsCorruption());
  EXPECT_EQ(s.ToString(), "DataLoss: wal frame crc mismatch");
  EXPECT_FALSE(Status::Corruption().IsDataLoss());
}

TEST(StatusTest, UnavailableIsDistinctFromOverloadedAndBusy) {
  // Unavailable = "not taking work yet" (recovery barrier); Overloaded =
  // "shedding load". Clients back off differently, so no aliasing.
  const Status s = Status::Unavailable("service recovering");
  EXPECT_FALSE(s.IsOverloaded());
  EXPECT_FALSE(s.IsBusy());
  EXPECT_EQ(s.ToString(), "Unavailable: service recovering");
  EXPECT_FALSE(Status::Overloaded().IsUnavailable());
}

TEST(StatusTest, OverloadedNamedAndDistinct) {
  const Status s = Status::Overloaded("queue full");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.ToString(), "Overloaded: queue full");
  EXPECT_FALSE(s.IsDeadlock());
  EXPECT_FALSE(s.IsBusy());
  EXPECT_FALSE(Status::Busy().IsOverloaded());
}

TEST(StatusTest, MessagePreserved) {
  Status s = Status::Deadlock("cycle of 3");
  EXPECT_EQ(s.message(), "cycle of 3");
  EXPECT_EQ(s.ToString(), "Deadlock: cycle of 3");
}

TEST(StatusTest, CodesAreDistinct) {
  EXPECT_FALSE(Status::NotFound().IsDeadlock());
  EXPECT_FALSE(Status::Deadlock().IsLockTimeout());
  EXPECT_FALSE(Status::Aborted().IsNotFound());
}

TEST(ResultTest, ValueRoundTrip) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, ErrorPropagates) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.status().message(), "nope");
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r.value());
  EXPECT_EQ(*v, 7);
}

}  // namespace
}  // namespace tdp
