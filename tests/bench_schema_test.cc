// Golden/regression coverage for the bench harness: the smoke suite's
// document validates against the checked-in schema (tools/bench_schema.json
// — drift fails here before it fails in CI), and the cross-subsystem
// counter invariants hold end-to-end: every lock the lock manager granted
// was observed by a transaction, and every WAL byte written is accounted by
// whole blocks. The suite runs once per test binary (quick mode) and the
// tests assert on the shared document.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "common/json.h"
#include "tools/bench_suites.h"

namespace tdp {
namespace {

const json::Value& SmokeDoc() {
  static const json::Value* const doc = [] {
    // Quick mode sizes the suite for CI; the invariants are size-independent.
    ::setenv("TDP_QUICK_BENCH", "1", 1);
    return new json::Value(tools::RunSuite("smoke"));
  }();
  return *doc;
}

json::Value LoadSchema() {
  std::ifstream in(TDP_SCHEMA_PATH);
  EXPECT_TRUE(in.good()) << "cannot open " << TDP_SCHEMA_PATH;
  std::ostringstream ss;
  ss << in.rdbuf();
  json::Value schema;
  std::string err;
  EXPECT_TRUE(json::Value::Parse(ss.str(), &schema, &err)) << err;
  return schema;
}

int64_t Counter(const json::Value& exp, const std::string& name) {
  const json::Value* c = exp.Find("metrics")->Find("counters")->Find(name);
  return c != nullptr ? c->as_int() : -1;
}

TEST(BenchSchemaTest, SmokeSuiteMatchesCheckedInSchema) {
  const json::Value schema = LoadSchema();
  const std::vector<std::string> problems =
      tools::ValidateAgainstSchema(SmokeDoc(), schema);
  for (const std::string& p : problems) ADD_FAILURE() << "schema drift: " << p;
}

TEST(BenchSchemaTest, SmokeSuiteCoversAllEngines) {
  const json::Value& doc = SmokeDoc();
  EXPECT_EQ(doc.Find("schema_version")->as_int(), 1);
  EXPECT_EQ(doc.Find("suite")->as_string(), "smoke");
  bool mysql = false, pg = false, volt = false;
  for (const json::Value& e : doc.Find("experiments")->items()) {
    const std::string engine = e.Find("engine")->as_string();
    mysql |= engine == "mysqlmini";
    pg |= engine == "pgmini";
    volt |= engine == "voltmini";
    EXPECT_GT(e.Find("latency")->Find("count")->as_int(), 0)
        << e.Find("name")->as_string();
  }
  EXPECT_TRUE(mysql);
  EXPECT_TRUE(pg);
  EXPECT_TRUE(volt);
}

TEST(BenchSchemaTest, SmokeSuiteInvariantsHold) {
#ifdef TDP_METRICS_DISABLED
  GTEST_SKIP() << "metrics compiled out";
#endif
  const std::vector<std::string> problems =
      tools::CheckInvariants(SmokeDoc());
  for (const std::string& p : problems)
    ADD_FAILURE() << "invariant violated: " << p;
}

TEST(BenchSchemaTest, LockGrantsMatchTxnObservedAcquisitions) {
#ifdef TDP_METRICS_DISABLED
  GTEST_SKIP() << "metrics compiled out";
#endif
  for (const json::Value& e : SmokeDoc().Find("experiments")->items()) {
    const std::string engine = e.Find("engine")->as_string();
    const std::string name = e.Find("name")->as_string();
    if (engine == "mysqlmini") {
      EXPECT_EQ(Counter(e, "lock.grants.total"),
                Counter(e, "mysql.lock_acquisitions"))
          << name;
      EXPECT_GT(Counter(e, "lock.grants.total"), 0) << name;
    } else if (engine == "pgmini") {
      EXPECT_EQ(Counter(e, "lock.grants.total"),
                Counter(e, "pg.lock_acquisitions"))
          << name;
      EXPECT_GT(Counter(e, "lock.grants.total"), 0) << name;
    }
  }
}

TEST(BenchSchemaTest, WalBytesAreWholeBlocksAndRedoBytesBalance) {
#ifdef TDP_METRICS_DISABLED
  GTEST_SKIP() << "metrics compiled out";
#endif
  for (const json::Value& e : SmokeDoc().Find("experiments")->items()) {
    const std::string engine = e.Find("engine")->as_string();
    const std::string name = e.Find("name")->as_string();
    if (engine == "pgmini") {
      const int64_t block =
          e.Find("params")->Find("wal_block_bytes")->as_int();
      ASSERT_GT(block, 0) << name;
      EXPECT_EQ(Counter(e, "wal.bytes_written"),
                Counter(e, "wal.blocks_written") * block)
          << name;
      EXPECT_GT(Counter(e, "wal.commits"), 0) << name;
    } else if (engine == "mysqlmini" &&
               Counter(e, "log.degraded_commits") == 0) {
      // Eager-flush runs quiesce durable: redo bytes the engine committed
      // equal the bytes the log flushed.
      const json::Value* check = e.Find("params")->Find("check_redo_bytes");
      if (check != nullptr && check->as_bool()) {
        EXPECT_EQ(Counter(e, "log.bytes_written"),
                  Counter(e, "mysql.redo_bytes"))
            << name;
      }
    }
  }
}

// Self-test of the validator: the schema gate only protects BENCH_*.json if
// missing keys and type changes actually register as drift.
TEST(BenchSchemaTest, ValidatorDetectsMissingKeyAndTypeDrift) {
  json::Value schema = json::Value::Object();
  schema.Set("a", json::Value::Str("int"));
  schema.Set("b", json::Value::Str("string"));

  json::Value doc = json::Value::Object();
  doc.Set("a", json::Value::Str("not-a-number"));  // type drift
  // "b" missing entirely.
  doc.Set("extra", json::Value::Int(1));  // extras are allowed
  const std::vector<std::string> problems =
      tools::ValidateAgainstSchema(doc, schema);
  ASSERT_EQ(problems.size(), 2u);

  json::Value ok = json::Value::Object();
  ok.Set("a", json::Value::Int(3));
  ok.Set("b", json::Value::Str("x"));
  EXPECT_TRUE(tools::ValidateAgainstSchema(ok, schema).empty());

  // Array schemas apply their single element shape to every element.
  json::Value arr_schema = json::Value::Object();
  json::Value elems = json::Value::Array();
  elems.Append(json::Value::Str("number"));
  arr_schema.Set("xs", std::move(elems));
  json::Value arr_doc = json::Value::Object();
  json::Value xs = json::Value::Array();
  xs.Append(json::Value::Number(1.5));
  xs.Append(json::Value::Str("drift"));
  arr_doc.Set("xs", std::move(xs));
  EXPECT_EQ(tools::ValidateAgainstSchema(arr_doc, arr_schema).size(), 1u);
}

}  // namespace
}  // namespace tdp
