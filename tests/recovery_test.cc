// Crash recovery: logical redo capture + replay (RecoverInto), including
// recovery under injected torn flushes (the durable-prefix contract).
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "common/metrics.h"
#include "engine/mysqlmini.h"
#include "engine/recovery.h"
#include "log/log_codec.h"
#include "workload/driver.h"
#include "workload/tpcc.h"

namespace tdp::engine {
namespace {

MySQLMiniConfig RecoveryConfig(log::FlushPolicy policy) {
  MySQLMiniConfig cfg;
  cfg.logical_redo = true;
  cfg.flush_policy = policy;
  cfg.flusher_interval_ns = MillisToNanos(5);
  cfg.row_work_ns = 0;
  cfg.btree.level_work_ns = 0;
  cfg.data_disk.base_latency_ns = 0;
  cfg.data_disk.sigma = 0;
  cfg.log_disk.base_latency_ns = 1000;
  cfg.log_disk.sigma = 0;
  cfg.log_disk.flush_barrier_ns = 0;
  return cfg;
}

void CreateSchema(MySQLMini* db) {
  db->CreateTable("acct", 64);
  db->CreateTable("audit", 64);
}

TEST(RecoveryTest, CommittedUpdatesSurvive) {
  MySQLMini db(RecoveryConfig(log::FlushPolicy::kEagerFlush));
  CreateSchema(&db);
  const uint32_t acct = db.TableId("acct");
  db.BulkUpsert(acct, 1, storage::Row{100});

  auto conn = db.Connect();
  ASSERT_TRUE(conn->Begin().ok());
  ASSERT_TRUE(conn->Update(acct, 1, 0, 42).ok());
  ASSERT_TRUE(conn->Insert(acct, 2, storage::Row{7, 8}).ok());
  ASSERT_TRUE(conn->Commit().ok());

  const auto recovered = db.redo_log().RecoverCommitted();
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_EQ(recovered[0].ops.size(), 2u);

  // Replay into a fresh instance with the same schema. Note the recovered
  // image reflects redo only — rows loaded via BulkUpsert (the "backup")
  // must be restored first, as in any backup+log recovery.
  MySQLMini fresh(RecoveryConfig(log::FlushPolicy::kEagerFlush));
  CreateSchema(&fresh);
  fresh.BulkUpsert(acct, 1, storage::Row{100});
  MySQLMini::RecoverInto(recovered, &fresh);

  auto check = fresh.Connect();
  ASSERT_TRUE(check->Begin().ok());
  EXPECT_EQ(*check->ReadColumn(acct, 1, 0), 142);
  EXPECT_EQ(*check->ReadColumn(acct, 2, 1), 8);
  ASSERT_TRUE(check->Commit().ok());
}

TEST(RecoveryTest, RolledBackTxnLeavesNoRedo) {
  MySQLMini db(RecoveryConfig(log::FlushPolicy::kEagerFlush));
  CreateSchema(&db);
  const uint32_t acct = db.TableId("acct");
  db.BulkUpsert(acct, 1, storage::Row{100});
  auto conn = db.Connect();
  ASSERT_TRUE(conn->Begin().ok());
  ASSERT_TRUE(conn->Update(acct, 1, 0, 42).ok());
  conn->Rollback();
  EXPECT_TRUE(db.redo_log().RecoverCommitted().empty());
}

TEST(RecoveryTest, DeleteReplays) {
  MySQLMini db(RecoveryConfig(log::FlushPolicy::kEagerFlush));
  CreateSchema(&db);
  const uint32_t acct = db.TableId("acct");
  db.BulkUpsert(acct, 1, storage::Row{1});
  auto conn = db.Connect();
  ASSERT_TRUE(conn->Begin().ok());
  ASSERT_TRUE(conn->Delete(acct, 1).ok());
  ASSERT_TRUE(conn->Commit().ok());

  MySQLMini fresh(RecoveryConfig(log::FlushPolicy::kEagerFlush));
  CreateSchema(&fresh);
  fresh.BulkUpsert(acct, 1, storage::Row{1});
  MySQLMini::RecoverInto(db.redo_log().RecoverCommitted(), &fresh);
  EXPECT_EQ(fresh.TableRowCount(acct), 0u);
}

TEST(RecoveryTest, ReplayIsIdempotent) {
  MySQLMini db(RecoveryConfig(log::FlushPolicy::kEagerFlush));
  CreateSchema(&db);
  const uint32_t acct = db.TableId("acct");
  db.BulkUpsert(acct, 1, storage::Row{10});
  auto conn = db.Connect();
  ASSERT_TRUE(conn->Begin().ok());
  ASSERT_TRUE(conn->Update(acct, 1, 0, 5).ok());
  ASSERT_TRUE(conn->Commit().ok());

  const auto recovered = db.redo_log().RecoverCommitted();
  MySQLMini fresh(RecoveryConfig(log::FlushPolicy::kEagerFlush));
  CreateSchema(&fresh);
  fresh.BulkUpsert(acct, 1, storage::Row{10});
  MySQLMini::RecoverInto(recovered, &fresh);
  MySQLMini::RecoverInto(recovered, &fresh);  // replay twice
  auto check = fresh.Connect();
  ASSERT_TRUE(check->Begin().ok());
  EXPECT_EQ(*check->ReadColumn(acct, 1, 0), 15);  // not 20
  ASSERT_TRUE(check->Commit().ok());
}

TEST(RecoveryTest, LazyWriteLosesTailTransactions) {
  MySQLMiniConfig cfg = RecoveryConfig(log::FlushPolicy::kLazyWrite);
  cfg.flusher_interval_ns = MillisToNanos(1000);  // crash before any flush
  MySQLMini db(cfg);
  CreateSchema(&db);
  const uint32_t acct = db.TableId("acct");
  db.BulkUpsert(acct, 1, storage::Row{0});
  auto conn = db.Connect();
  ASSERT_TRUE(conn->Begin().ok());
  ASSERT_TRUE(conn->Update(acct, 1, 0, 1).ok());
  ASSERT_TRUE(conn->Commit().ok());  // committed to the client...
  const auto recovered = db.redo_log().RecoverCommitted();
  EXPECT_TRUE(recovered.empty());  // ...but lost in the crash (Appendix B)
}

// End-to-end: concurrent transfer workload, crash, recover, and verify that
// the recovered state is exactly the committed prefix (total conserved).
TEST(RecoveryTest, ConcurrentTransfersRecoverConsistently) {
  MySQLMini db(RecoveryConfig(log::FlushPolicy::kEagerFlush));
  CreateSchema(&db);
  const uint32_t acct = db.TableId("acct");
  constexpr int kAccounts = 16;
  constexpr int64_t kInitial = 1000;
  for (int a = 0; a < kAccounts; ++a) {
    db.BulkUpsert(acct, a, storage::Row{kInitial});
  }
  constexpr int kThreads = 4, kTransfers = 60;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      auto conn = db.Connect();
      Rng rng(t + 1);
      for (int i = 0; i < kTransfers; ++i) {
        const uint64_t from = rng.Uniform(kAccounts);
        uint64_t to = rng.Uniform(kAccounts);
        if (to == from) to = (to + 1) % kAccounts;
        // Canonical order avoids deadlocks.
        const uint64_t lo = std::min(from, to), hi = std::max(from, to);
        for (;;) {
          ASSERT_TRUE(conn->Begin().ok());
          Status s = conn->Update(acct, lo, 0, lo == from ? -10 : 10);
          if (s.ok()) s = conn->Update(acct, hi, 0, hi == from ? -10 : 10);
          if (s.ok()) s = conn->Commit();
          else conn->Rollback();
          if (s.ok()) break;
        }
      }
    });
  }
  for (auto& t : ts) t.join();

  MySQLMini fresh(RecoveryConfig(log::FlushPolicy::kEagerFlush));
  CreateSchema(&fresh);
  for (int a = 0; a < kAccounts; ++a) {
    fresh.BulkUpsert(acct, a, storage::Row{kInitial});
  }
  MySQLMini::RecoverInto(db.redo_log().RecoverCommitted(), &fresh);

  auto check = fresh.Connect();
  ASSERT_TRUE(check->Begin().ok());
  int64_t total = 0;
  for (int a = 0; a < kAccounts; ++a) {
    total += *check->ReadColumn(acct, a, 0);
  }
  ASSERT_TRUE(check->Commit().ok());
  EXPECT_EQ(total, int64_t{kAccounts} * kInitial);  // money conserved
}

// Fault-injection × recovery combo: with torn flushes armed past the retry
// budget, degraded commits stay undurable, and RecoverInto reconstructs
// exactly the durable prefix — while the injector's event counters and the
// RetryIo-side retry counters stay in exact agreement.
TEST(RecoveryFaultComboTest, TornFlushRecoversExactlyTheDurablePrefix) {
#ifndef TDP_METRICS_DISABLED
  metrics::Registry::Global().ResetAll();  // quiesced: private deltas below
#endif
  FaultInjector inj;
  // Torn with certainty for the whole phase-2 window, so every flush
  // attempt fails and every phase-2 commit degrades.
  inj.AddTornFlush(0, MillisToNanos(60000), 1.0);

  MySQLMiniConfig cfg = RecoveryConfig(log::FlushPolicy::kEagerFlush);
  cfg.log_group_commit = false;           // per-commit fsync: 1 flush/commit
  cfg.log_fallback_lazy_on_stall = true;  // degrade instead of retry forever
  // The flusher keeps running (Stop() joins it, so the interval must stay
  // small); inside the torn window its rounds fail too, leaving the
  // durable horizon exactly where phase 1 put it.
  cfg.flusher_interval_ns = MillisToNanos(50);
  cfg.io_retry.max_attempts = 2;
  cfg.io_retry.backoff_ns = 1000;
  cfg.log_disk.fault = &inj;
  MySQLMini db(cfg);
  CreateSchema(&db);
  const uint32_t acct = db.TableId("acct");
  constexpr int kRows = 10, kDurable = 5;
  for (int a = 0; a < kRows; ++a) db.BulkUpsert(acct, a, storage::Row{100});

  auto conn = db.Connect();
  // Phase 1 (no faults yet): commits fsync synchronously and are durable.
  for (int a = 0; a < kDurable; ++a) {
    ASSERT_TRUE(conn->Begin().ok());
    ASSERT_TRUE(conn->Update(acct, a, 0, a + 1).ok());
    ASSERT_TRUE(conn->Commit().ok());
  }
  ASSERT_EQ(db.redo_log().durable_lsn(), static_cast<uint64_t>(kDurable));

  inj.Arm();
  // Phase 2: every flush tears; commits degrade (client still sees OK, as
  // with synchronous_commit=off) and stay past the durable horizon.
  for (int a = kDurable; a < kRows; ++a) {
    ASSERT_TRUE(conn->Begin().ok());
    ASSERT_TRUE(conn->Update(acct, a, 0, a + 1).ok());
    ASSERT_TRUE(conn->Commit().ok());
  }
  EXPECT_EQ(db.redo_log().durable_lsn(), static_cast<uint64_t>(kDurable));

  const auto recovered = db.redo_log().RecoverCommitted();
  ASSERT_EQ(recovered.size(), static_cast<size_t>(kDurable));

  MySQLMini fresh(RecoveryConfig(log::FlushPolicy::kEagerFlush));
  CreateSchema(&fresh);
  for (int a = 0; a < kRows; ++a) fresh.BulkUpsert(acct, a, storage::Row{100});
  MySQLMini::RecoverInto(recovered, &fresh);
  auto check = fresh.Connect();
  ASSERT_TRUE(check->Begin().ok());
  for (int a = 0; a < kRows; ++a) {
    const int64_t expect = a < kDurable ? 100 + a + 1 : 100;
    EXPECT_EQ(*check->ReadColumn(acct, a, 0), expect) << "row " << a;
  }
  ASSERT_TRUE(check->Commit().ok());

  // Five commit rounds of two torn attempts each, plus however many rounds
  // the background flusher lost to the same window.
  EXPECT_GE(inj.stats().torn_flushes.load(),
            static_cast<uint64_t>(2 * (kRows - kDurable)));
#ifndef TDP_METRICS_DISABLED
  const metrics::MetricsSnapshot snap =
      metrics::Registry::Global().TakeSnapshot();
  EXPECT_EQ(snap.counter("fault.torn_flushes"),
            inj.stats().torn_flushes.load());
  // With torn flushes as the only fault, every failed flush attempt is
  // either a RetryIo retry or the round's terminal I/O error.
  EXPECT_EQ(snap.counter("fault.torn_flushes"),
            snap.counter("log.io_retries") + snap.counter("log.io_errors"));
  // The process-wide RetryIo counter saw the same retries (no other disk
  // had faults armed).
  EXPECT_EQ(snap.counter("io.retries"), snap.counter("log.io_retries"));
  EXPECT_EQ(snap.counter("log.degraded_commits"),
            static_cast<uint64_t>(kRows - kDurable));
#endif
}

// Checkpoint + log-suffix recovery on the mysql engine: restoring the
// snapshot and replaying only lsn > checkpoint.lsn matches full replay.
TEST(RecoveryTest, CheckpointPlusSuffixMatchesFullReplay) {
  MySQLMini db(RecoveryConfig(log::FlushPolicy::kEagerFlush));
  CreateSchema(&db);
  const uint32_t acct = db.TableId("acct");
  auto conn = db.Connect();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(conn->Begin().ok());
    ASSERT_TRUE(conn->Insert(acct, i, storage::Row{i}).ok());
    ASSERT_TRUE(conn->Commit().ok());
  }
  const Checkpoint ckpt = db.TakeCheckpoint().value();
  EXPECT_EQ(ckpt.lsn, 3u);
  for (int i = 3; i < 6; ++i) {
    ASSERT_TRUE(conn->Begin().ok());
    ASSERT_TRUE(conn->Insert(acct, i, storage::Row{i}).ok());
    ASSERT_TRUE(conn->Commit().ok());
  }
  // Survive one torn checkpoint write: the two-slot store falls back.
  CheckpointStore store;
  store.Save(EncodeCheckpoint(ckpt));
  store.Save(EncodeCheckpoint(db.TakeCheckpoint().value()));
  store.TearNewest(7);
  const auto loaded = store.LoadLatest();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->lsn, ckpt.lsn);

  const auto recovered = db.redo_log().RecoverCommitted();
  MySQLMini via_ckpt(RecoveryConfig(log::FlushPolicy::kEagerFlush));
  CreateSchema(&via_ckpt);
  RestoreCheckpoint(*loaded, &via_ckpt.catalog());
  MySQLMini::RecoverInto(recovered, &via_ckpt, loaded->lsn);

  MySQLMini via_full(RecoveryConfig(log::FlushPolicy::kEagerFlush));
  CreateSchema(&via_full);
  MySQLMini::RecoverInto(recovered, &via_full);

  auto a = via_ckpt.Connect();
  auto b = via_full.Connect();
  ASSERT_TRUE(a->Begin().ok());
  ASSERT_TRUE(b->Begin().ok());
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(*a->ReadColumn(acct, i, 0), i);
    EXPECT_EQ(*b->ReadColumn(acct, i, 0), i);
  }
  ASSERT_TRUE(a->Commit().ok());
  ASSERT_TRUE(b->Commit().ok());
}

// Torn-tail sweep: a post-crash read of the log device surfaces the durable
// prefix plus 0..N bytes of the unflushed tail. Every cut must decode to a
// clean prefix of the commit sequence — torn or clean, never garbage.
TEST(RecoveryTest, CrashImageTailSweepYieldsOnlyCleanPrefixes) {
  MySQLMiniConfig cfg = RecoveryConfig(log::FlushPolicy::kLazyWrite);
  cfg.flusher_interval_ns = MillisToNanos(1000000);  // flusher never runs
  MySQLMini db(cfg);
  CreateSchema(&db);
  const uint32_t acct = db.TableId("acct");
  constexpr int kTxns = 4;
  auto conn = db.Connect();
  for (int i = 0; i < kTxns; ++i) {
    ASSERT_TRUE(conn->Begin().ok());
    ASSERT_TRUE(conn->Insert(acct, i, storage::Row{i}).ok());
    ASSERT_TRUE(conn->Commit().ok());
  }
  ASSERT_EQ(db.redo_log().durable_lsn(), 0u);  // nothing flushed

  const size_t total = db.redo_log().image_bytes();
  ASSERT_GT(total, 0u);
  uint64_t max_frames = 0;
  for (size_t extra = 0; extra <= total; ++extra) {
    const std::vector<uint8_t> image = db.redo_log().CrashImage(extra);
    ASSERT_EQ(image.size(), extra);  // durable prefix is empty
    std::vector<log::RecoveredTxn> out;
    const log::LogDecodeResult r = log::DecodeLogImage(image, &out);
    ASSERT_TRUE(r.status.ok()) << "extra=" << extra;
    ASSERT_EQ(out.size(), r.frames);
    for (size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i].lsn, i + 1) << "extra=" << extra;
      EXPECT_EQ(out[i].ops.at(0).key, i) << "extra=" << extra;
    }
    EXPECT_GE(r.frames, max_frames);  // monotone in the tail length
    max_frames = std::max(max_frames, r.frames);
  }
  EXPECT_EQ(max_frames, static_cast<uint64_t>(kTxns));
}

}  // namespace
}  // namespace tdp::engine
