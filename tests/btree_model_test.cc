#include "storage/btree_model.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/clock.h"
#include "common/random.h"

namespace tdp::storage {
namespace {

TEST(BTreeModelTest, DepthGrowsLogarithmically) {
  BTreeModel m;
  EXPECT_EQ(m.DepthFor(1), 1);
  const int d64 = m.DepthFor(64);
  const int d4096 = m.DepthFor(64 * 64);
  const int dbig = m.DepthFor(uint64_t{64} * 64 * 64 * 64);
  EXPECT_LT(d64, d4096);
  EXPECT_LT(d4096, dbig);
  EXPECT_EQ(d4096 - d64, 1);  // one extra level per fanout factor
}

TEST(BTreeModelTest, DepthMonotonicInN) {
  BTreeModel m;
  int prev = 0;
  for (uint64_t n = 1; n < (uint64_t{1} << 30); n *= 4) {
    const int d = m.DepthFor(n);
    EXPECT_GE(d, prev);
    prev = d;
  }
}

TEST(BTreeModelTest, TraverseCostScalesWithDepth) {
  BTreeModelConfig cfg;
  cfg.level_work_ns = 20000;
  BTreeModel m(cfg);
  // Min-of-3 guards against preemption on a loaded single-core machine.
  auto time_traverse = [&](uint64_t n) {
    int64_t best = INT64_MAX;
    for (int i = 0; i < 3; ++i) {
      const int64_t t0 = NowNanos();
      m.Traverse(n);
      best = std::min(best, NowNanos() - t0);
    }
    return best;
  };
  const int64_t shallow = time_traverse(10);
  const int64_t deep = time_traverse(uint64_t{1} << 40);
  EXPECT_GT(deep, shallow + 2 * cfg.level_work_ns);
}

TEST(BTreeModelTest, SplitsOccurAtConfiguredRate) {
  BTreeModelConfig cfg;
  cfg.split_every = 10;
  cfg.insert_work_ns = 1000;
  BTreeModel m(cfg);
  Rng rng(42);
  // Time many inserts; splits make some of them much slower. We check the
  // rate indirectly by counting slow inserts.
  int slow = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    const int64_t t0 = NowNanos();
    m.InsertCost(1 << 20, &rng);
    const int64_t dt = NowNanos() - t0;
    if (dt > 4 * cfg.insert_work_ns) ++slow;
  }
  EXPECT_GT(slow, n / 30);  // roughly 1/10 expected
  EXPECT_LT(slow, n / 4);
}

TEST(BTreeModelTest, NoSplitsWithNullRng) {
  BTreeModelConfig cfg;
  cfg.split_every = 1;  // would split every time if rng were used
  cfg.insert_work_ns = 1000;
  BTreeModel m(cfg);
  const int64_t t0 = NowNanos();
  for (int i = 0; i < 100; ++i) m.InsertCost(1 << 20, nullptr);
  const int64_t per_insert = (NowNanos() - t0) / 100;
  EXPECT_LT(per_insert, 10 * cfg.insert_work_ns);
}

}  // namespace
}  // namespace tdp::storage
