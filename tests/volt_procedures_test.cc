#include "volt/procedures.h"

#include <gtest/gtest.h>

namespace tdp::volt {
namespace {

TEST(ProcedureMixTest, SubmitNextCompletes) {
  VoltMini db(VoltMiniConfig{});
  db.Start();
  ProcedureMix mix(&db);
  auto ticket = mix.SubmitNext();
  ticket->Wait();
  EXPECT_GT(ticket->done_ns, ticket->submit_ns);
  db.Stop();
}

TEST(ProcedureMixTest, ServiceTimesWithinConfiguredBounds) {
  VoltMiniConfig vcfg;
  vcfg.num_workers = 4;
  VoltMini db(vcfg);
  db.Start();
  ProcedureMixConfig cfg;
  cfg.min_service_us = 500;
  cfg.max_service_us = 1500;
  cfg.pct_multi_partition = 0;
  ProcedureMix mix(&db, cfg);
  for (int i = 0; i < 30; ++i) {
    auto t = mix.SubmitNext();
    t->Wait();
    // exec >= configured minimum; upper bound is loose (scheduler noise).
    EXPECT_GE(t->exec_ns(), cfg.min_service_us * 1000);
    EXPECT_LT(t->exec_ns(), 100 * cfg.max_service_us * 1000);
  }
  db.Stop();
}

TEST(ProcedureMixTest, MultiPartitionSurchargeRaisesMeanExec) {
  VoltMiniConfig vcfg;
  vcfg.num_workers = 4;
  auto mean_exec = [&](int pct_mp) {
    VoltMini db(vcfg);
    db.Start();
    ProcedureMixConfig cfg;
    cfg.min_service_us = 500;
    cfg.max_service_us = 501;  // nearly constant base
    cfg.pct_multi_partition = pct_mp;
    cfg.multi_partition_extra_us = 3000;
    ProcedureMix mix(&db, cfg);
    int64_t total = 0;
    constexpr int kN = 60;
    for (int i = 0; i < kN; ++i) {
      auto t = mix.SubmitNext();
      t->Wait();
      total += t->exec_ns();
    }
    db.Stop();
    return total / kN;
  };
  EXPECT_GT(mean_exec(100), mean_exec(0) + 2000000);
}

TEST(ProcedureMixTest, OpenLoopReturnsAllTickets) {
  VoltMiniConfig vcfg;
  vcfg.num_workers = 8;
  VoltMini db(vcfg);
  db.Start();
  ProcedureMixConfig cfg;
  cfg.min_service_us = 100;
  cfg.max_service_us = 300;
  ProcedureMix mix(&db, cfg);
  const auto tickets = mix.RunOpenLoop(100, 2000);
  ASSERT_EQ(tickets.size(), 100u);
  for (const auto& t : tickets) {
    EXPECT_GT(t->done_ns, 0);
    EXPECT_GE(t->queue_wait_ns(), 0);
  }
  db.Stop();
}

}  // namespace
}  // namespace tdp::volt
