// Deterministic properties of the WAL block-size knob (Fig. 4 right): the
// number of blocks a commit writes is ceil(bytes/block), so the total bytes
// pushed to the device are block-aligned — small blocks mean more write ops,
// large blocks mean write amplification.
#include <gtest/gtest.h>

#include "pg/wal.h"

namespace tdp::pg {
namespace {

WalConfig QuietWal(uint64_t block) {
  WalConfig cfg;
  cfg.block_bytes = block;
  cfg.disk.base_latency_ns = 0;
  cfg.disk.sigma = 0;
  cfg.disk.flush_barrier_ns = 0;
  return cfg;
}

class BlockSizeTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BlockSizeTest, BlocksAreCeilOfPayload) {
  const uint64_t block = GetParam();
  WalManager wal(QuietWal(block));
  const uint64_t payloads[] = {1,          block - 1, block,
                               block + 1,  3 * block, 3 * block + 7};
  uint64_t expected = 0;
  for (uint64_t p : payloads) {
    wal.CommitFlush(p);
    expected += (p + block - 1) / block;
  }
  EXPECT_EQ(wal.stats().blocks_written.load(), expected);
  EXPECT_EQ(wal.stats().commits.load(), 6u);
}

TEST_P(BlockSizeTest, WriteOpsDecreaseAsBlockGrows) {
  const uint64_t block = GetParam();
  WalManager small(QuietWal(block));
  WalManager big(QuietWal(block * 4));
  const uint64_t payload = block * 8 + 5;
  small.CommitFlush(payload);
  big.CommitFlush(payload);
  EXPECT_GT(small.stats().blocks_written.load(),
            big.stats().blocks_written.load());
  // ...but the big-block WAL pushed at least as many bytes (amplification).
  EXPECT_GE(big.stats().blocks_written.load() * block * 4,
            small.stats().blocks_written.load() * block);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BlockSizeTest,
                         ::testing::Values(4096u, 8192u, 16384u, 65536u),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return std::to_string(info.param / 1024) + "K";
                         });

TEST(BlockSizeTest, ZeroPayloadStillWritesHeaderBlock) {
  WalManager wal(QuietWal(8192));
  wal.CommitFlush(0);
  EXPECT_EQ(wal.stats().blocks_written.load(), 1u);
}

}  // namespace
}  // namespace tdp::pg
