#include "common/spinlock.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/work.h"

namespace tdp {
namespace {

TEST(SpinLockTest, BasicLockUnlock) {
  SpinLock l;
  l.lock();
  EXPECT_FALSE(l.try_lock());
  l.unlock();
  EXPECT_TRUE(l.try_lock());
  l.unlock();
}

TEST(SpinLockTest, TryLockForSucceedsWhenFree) {
  SpinLock l;
  EXPECT_TRUE(l.try_lock_for(1000));
  l.unlock();
}

TEST(SpinLockTest, TryLockForTimesOutWhenHeld) {
  SpinLock l;
  l.lock();
  const int64_t t0 = NowNanos();
  EXPECT_FALSE(l.try_lock_for(200000));  // 0.2 ms budget
  const int64_t elapsed = NowNanos() - t0;
  EXPECT_GE(elapsed, 150000);
  EXPECT_LT(elapsed, 50000000);  // and it did give up
  l.unlock();
}

TEST(SpinLockTest, TryLockForAcquiresWhenReleasedWithinBudget) {
  SpinLock l;
  l.lock();
  std::thread releaser([&] {
    SpinFor(100000);
    l.unlock();
  });
  EXPECT_TRUE(l.try_lock_for(MillisToNanos(100)));
  releaser.join();
  l.unlock();
}

TEST(SpinLockTest, MutualExclusionUnderContention) {
  SpinLock l;
  int counter = 0;
  constexpr int kThreads = 8, kIters = 20000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        l.lock();
        ++counter;
        l.unlock();
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(counter, kThreads * kIters);
}

}  // namespace
}  // namespace tdp
