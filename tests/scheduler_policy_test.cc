// Grant-order semantics of the three lock schedulers (Section 5).
//
// Each test stages a queue of waiters behind a held X lock, releases it, and
// observes the grant order through the waiters' completion sequence.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "common/work.h"
#include "lock/lock_manager.h"

namespace tdp::lock {
namespace {

constexpr RecordId kRec{9, 7};

struct Waiter {
  std::unique_ptr<TxnContext> txn;
  std::thread thread;
};

// Stages `n` waiters with given (birth offset, random priority) behind a
// held lock, releases, and returns txn ids in grant order.
std::vector<uint64_t> GrantOrder(LockManagerConfig cfg,
                                 std::vector<std::pair<int64_t, uint64_t>>
                                     birth_and_priority,
                                 LockMode mode = LockMode::kX) {
  LockManager lm(cfg);
  TxnContext holder(1000);
  EXPECT_TRUE(lm.Lock(&holder, kRec, LockMode::kX).ok());

  std::mutex order_mu;
  std::vector<uint64_t> order;

  const int64_t base = NowNanos();
  std::vector<Waiter> waiters(birth_and_priority.size());
  for (size_t i = 0; i < birth_and_priority.size(); ++i) {
    auto& w = waiters[i];
    w.txn = std::make_unique<TxnContext>(i + 1, birth_and_priority[i].second);
    // Force deterministic ages regardless of thread start jitter.
    w.txn->birth_ns = base - birth_and_priority[i].first;
    w.thread = std::thread([&, i] {
      Status s = lm.Lock(waiters[i].txn.get(), kRec, mode);
      EXPECT_TRUE(s.ok()) << s.ToString();
      {
        std::lock_guard<std::mutex> g(order_mu);
        order.push_back(waiters[i].txn->id);
      }
      // Hold briefly so exclusive grants cannot overlap-reorder.
      SpinFor(100000);
      lm.ReleaseAll(waiters[i].txn.get());
    });
    // Ensure queue arrival order matches index order (FCFS basis).
    while (lm.QueueDepths(kRec).second != i + 1) SpinFor(5000);
  }

  lm.ReleaseAll(&holder);
  for (auto& w : waiters) w.thread.join();
  return order;
}

LockManagerConfig Config(SchedulerPolicy p) {
  LockManagerConfig cfg;
  cfg.policy = p;
  cfg.wait_timeout_ns = MillisToNanos(5000);
  return cfg;
}

TEST(SchedulerPolicyTest, FcfsGrantsInArrivalOrder) {
  // Births are deliberately *reversed*: the last arrival is the eldest.
  // FCFS must ignore age and grant in arrival order 1,2,3,4.
  auto order = GrantOrder(Config(SchedulerPolicy::kFCFS),
                          {{10, 0}, {20, 0}, {30, 0}, {40, 0}});
  EXPECT_EQ(order, (std::vector<uint64_t>{1, 2, 3, 4}));
}

TEST(SchedulerPolicyTest, VatsGrantsEldestFirst) {
  // Arrival order 1,2,3,4 but ages increasing with index: VATS must grant
  // the eldest (largest age = earliest birth) first: 4,3,2,1.
  auto order = GrantOrder(Config(SchedulerPolicy::kVATS),
                          {{10, 0}, {20, 0}, {30, 0}, {40, 0}});
  EXPECT_EQ(order, (std::vector<uint64_t>{4, 3, 2, 1}));
}

TEST(SchedulerPolicyTest, VatsAgreesWithFcfsWhenAgesFollowArrival) {
  // Ages decreasing with arrival index (the natural case): both orders equal.
  auto order = GrantOrder(Config(SchedulerPolicy::kVATS),
                          {{40, 0}, {30, 0}, {20, 0}, {10, 0}});
  EXPECT_EQ(order, (std::vector<uint64_t>{1, 2, 3, 4}));
}

TEST(SchedulerPolicyTest, RsGrantsByRandomPriority) {
  // Priorities force order 3,1,4,2 regardless of arrival or age.
  auto order = GrantOrder(Config(SchedulerPolicy::kRS),
                          {{40, 20}, {30, 40}, {20, 10}, {10, 30}});
  EXPECT_EQ(order, (std::vector<uint64_t>{3, 1, 4, 2}));
}

TEST(SchedulerPolicyTest, SharedWaitersGrantedTogetherUnderVats) {
  // All-shared waiters are mutually compatible: one release grants all.
  LockManager lm(Config(SchedulerPolicy::kVATS));
  TxnContext holder(100);
  ASSERT_TRUE(lm.Lock(&holder, kRec, LockMode::kX).ok());
  std::atomic<int> granted{0};
  std::vector<std::thread> ts;
  std::vector<std::unique_ptr<TxnContext>> txns;
  for (int i = 0; i < 4; ++i) {
    txns.push_back(std::make_unique<TxnContext>(i + 1));
  }
  for (int i = 0; i < 4; ++i) {
    ts.emplace_back([&, i] {
      EXPECT_TRUE(lm.Lock(txns[i].get(), kRec, LockMode::kS).ok());
      granted.fetch_add(1);
    });
    while (lm.QueueDepths(kRec).second != static_cast<size_t>(i) + 1) {
      SpinFor(5000);
    }
  }
  lm.ReleaseAll(&holder);
  for (auto& t : ts) t.join();
  EXPECT_EQ(granted.load(), 4);
  EXPECT_EQ(lm.QueueDepths(kRec).first, 4u);  // all granted simultaneously
  for (auto& t : txns) lm.ReleaseAll(t.get());
}

TEST(SchedulerPolicyTest, VatsCompatiblePrefixGrantsReadersAroundWriter) {
  // Queue (eldest→youngest): S(a), X(b), S(c). With the paper's
  // "compatible with everything in front" rule, releasing the holder grants
  // a (S) but NOT c — c conflicts with the waiting X ahead of it in
  // eldest-first order? No: S is compatible with S(a) but not with X(b)
  // which is "in front of it". So only a is granted.
  LockManager lm(Config(SchedulerPolicy::kVATS));
  TxnContext holder(100);
  ASSERT_TRUE(lm.Lock(&holder, kRec, LockMode::kX).ok());

  const int64_t base = NowNanos();
  TxnContext a(1), b(2), c(3);
  a.birth_ns = base - 3000000;  // eldest
  b.birth_ns = base - 2000000;
  c.birth_ns = base - 1000000;  // youngest

  std::atomic<bool> a_got{false}, b_got{false}, c_got{false};
  std::thread ta([&] {
    EXPECT_TRUE(lm.Lock(&a, kRec, LockMode::kS).ok());
    a_got.store(true);
  });
  while (lm.QueueDepths(kRec).second != 1) SpinFor(5000);
  std::thread tb([&] {
    EXPECT_TRUE(lm.Lock(&b, kRec, LockMode::kX).ok());
    b_got.store(true);
  });
  while (lm.QueueDepths(kRec).second != 2) SpinFor(5000);
  std::thread tc([&] {
    EXPECT_TRUE(lm.Lock(&c, kRec, LockMode::kS).ok());
    c_got.store(true);
  });
  while (lm.QueueDepths(kRec).second != 3) SpinFor(5000);

  lm.ReleaseAll(&holder);
  ta.join();
  EXPECT_TRUE(a_got.load());
  SpinFor(MillisToNanos(20));
  EXPECT_FALSE(b_got.load());  // blocked by a's S
  EXPECT_FALSE(c_got.load());  // blocked by b's waiting X ahead of it

  lm.ReleaseAll(&a);
  tb.join();
  EXPECT_TRUE(b_got.load());
  lm.ReleaseAll(&b);
  tc.join();
  EXPECT_TRUE(c_got.load());
  lm.ReleaseAll(&c);
}

// Ablation: strict mode stops the grant scan at the first conflict. With a
// young S ahead of an old X... under VATS order X(old) scans first; strict
// changes behaviour only for waiters *behind* a conflict. Verify a
// compatible-but-younger S behind a conflicting X is granted in default mode
// and NOT in strict mode when it is compatible with granted locks.
TEST(SchedulerPolicyTest, StrictPrefixStopsAtFirstConflict) {
  // Holder holds S. Queue eldest-first: X(old, conflicts), S(young,
  // compatible with holder S but behind the X).
  for (bool beyond : {true, false}) {
    LockManagerConfig cfg = Config(SchedulerPolicy::kVATS);
    cfg.grant_compatible_beyond_conflict = beyond;
    LockManager lm(cfg);
    TxnContext holder(100);
    ASSERT_TRUE(lm.Lock(&holder, kRec, LockMode::kS).ok());

    const int64_t base = NowNanos();
    TxnContext old_writer(1), young_reader(2);
    old_writer.birth_ns = base - 2000000;
    young_reader.birth_ns = base - 1000000;

    std::atomic<bool> writer_got{false}, reader_got{false};
    std::thread tw([&] {
      EXPECT_TRUE(lm.Lock(&old_writer, kRec, LockMode::kX).ok());
      writer_got.store(true);
    });
    while (lm.QueueDepths(kRec).second != 1) SpinFor(5000);
    std::thread tr([&] {
      EXPECT_TRUE(lm.Lock(&young_reader, kRec, LockMode::kS).ok());
      reader_got.store(true);
    });
    while (lm.QueueDepths(kRec).second != 2) SpinFor(5000);

    // In BOTH modes the young reader must not be granted: it conflicts with
    // the waiting X in front of it. (The modes differ only in whether the
    // scan continues past the X to find compatible waiters; here there are
    // none that are compatible.) This pins down that "in front" includes
    // waiting requests, not just granted ones.
    SpinFor(MillisToNanos(20));
    EXPECT_FALSE(writer_got.load());
    EXPECT_FALSE(reader_got.load());

    lm.ReleaseAll(&holder);
    tw.join();
    lm.ReleaseAll(&old_writer);
    tr.join();
    lm.ReleaseAll(&young_reader);
    EXPECT_TRUE(writer_got.load());
    EXPECT_TRUE(reader_got.load());
  }
}

}  // namespace
}  // namespace tdp::lock
