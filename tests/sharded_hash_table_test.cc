// tdp::ShardedHashTable: the per-bucket-spinlock chaining table under the
// lock manager's record queues and the buffer pool's page map. Pins the
// slot-callback contract (find-or-create, value-address stability until
// erase, erase-decision-in-critical-section) and value conservation under
// concurrent churn.
#include "common/sharded_hash_table.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace tdp {
namespace {

struct IdentityHash {
  size_t operator()(uint64_t k) const { return static_cast<size_t>(k); }
};

using Table = ShardedHashTable<uint64_t, int64_t, IdentityHash>;

TEST(ShardedHashTableTest, BucketCountRoundsUpToPowerOfTwo) {
  EXPECT_EQ(Table(1).num_buckets(), 1u);
  EXPECT_EQ(Table(3).num_buckets(), 4u);
  EXPECT_EQ(Table(64).num_buckets(), 64u);
  EXPECT_EQ(Table(65).num_buckets(), 128u);
}

TEST(ShardedHashTableTest, WithSlotCreatesValueInitializedThenFinds) {
  Table t(8);
  const bool first = t.WithSlot(7, [](int64_t& v, bool inserted) {
    EXPECT_EQ(v, 0);  // fresh slots are value-initialized
    v = 41;
    return inserted;
  });
  EXPECT_TRUE(first);
  const bool second = t.WithSlot(7, [](int64_t& v, bool inserted) {
    EXPECT_EQ(v, 41);
    ++v;
    return inserted;
  });
  EXPECT_FALSE(second);
  EXPECT_EQ(t.size(), 1u);
  int64_t seen = 0;
  EXPECT_TRUE(t.WithSlotIfPresent(7, [&](int64_t& v) { seen = v; }));
  EXPECT_EQ(seen, 42);
}

TEST(ShardedHashTableTest, WithSlotIfPresentIsFalseForAbsentKey) {
  Table t(8);
  bool ran = false;
  EXPECT_FALSE(t.WithSlotIfPresent(99, [&](int64_t&) { ran = true; }));
  EXPECT_FALSE(ran);
  EXPECT_EQ(t.size(), 0u);
}

TEST(ShardedHashTableTest, EraseIfHonorsTheCallbackDecision) {
  Table t(8);
  t.WithSlot(5, [](int64_t& v, bool) { v = 10; });
  // fn says no: the entry survives.
  EXPECT_FALSE(t.EraseIf(5, [](int64_t& v) { return v > 100; }));
  EXPECT_EQ(t.size(), 1u);
  // fn says yes: the entry is gone.
  EXPECT_TRUE(t.EraseIf(5, [](int64_t& v) { return v == 10; }));
  EXPECT_EQ(t.size(), 0u);
  EXPECT_FALSE(t.EraseIf(5, [](int64_t&) { return true; }));  // absent
  EXPECT_FALSE(t.Erase(5));
}

TEST(ShardedHashTableTest, ValueAddressStableUntilErase) {
  // The buffer pool stores Frame* values and the lock manager parks waiting
  // threads inside queue values: a slot's address must survive arbitrary
  // churn on other keys in the same bucket chain.
  Table t(1);  // one bucket: every key collides
  int64_t* addr = t.WithSlot(1, [](int64_t& v, bool) { return &v; });
  for (uint64_t k = 2; k < 200; ++k) {
    t.WithSlot(k, [](int64_t& v, bool) { v = 1; });
  }
  for (uint64_t k = 2; k < 200; k += 2) t.Erase(k);
  int64_t* addr_after = t.WithSlot(1, [](int64_t& v, bool) { return &v; });
  EXPECT_EQ(addr, addr_after);
}

TEST(ShardedHashTableTest, ForEachVisitsEveryEntry) {
  Table t(16);
  int64_t expected_sum = 0;
  for (uint64_t k = 0; k < 100; ++k) {
    t.WithSlot(k, [&](int64_t& v, bool) { v = static_cast<int64_t>(k); });
    expected_sum += static_cast<int64_t>(k);
  }
  int64_t sum = 0;
  size_t n = 0;
  t.ForEach([&](const uint64_t&, int64_t& v) {
    sum += v;
    ++n;
  });
  EXPECT_EQ(n, 100u);
  EXPECT_EQ(sum, expected_sum);
}

TEST(ShardedHashTableTest, ConcurrentIncrementsConserveTheTotal) {
  // 8 threads hammer a small key range (forced collisions) with find-or-
  // create increments; the table must lose none of them.
  Table t(4);  // 4 buckets for 16 keys: heavy chain sharing
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  constexpr uint64_t kKeys = 16;
  std::vector<std::thread> ts;
  for (int i = 0; i < kThreads; ++i) {
    ts.emplace_back([&, i] {
      for (int j = 0; j < kIters; ++j) {
        const uint64_t key = static_cast<uint64_t>(i * 31 + j) % kKeys;
        t.WithSlot(key, [](int64_t& v, bool) { ++v; });
      }
    });
  }
  for (auto& th : ts) th.join();
  int64_t sum = 0;
  t.ForEach([&](const uint64_t&, int64_t& v) { sum += v; });
  EXPECT_EQ(sum, static_cast<int64_t>(kThreads) * kIters);
  EXPECT_LE(t.size(), kKeys);
}

TEST(ShardedHashTableTest, ConcurrentInsertEraseChurnEndsEmpty) {
  // Disjoint key ranges per thread, insert-then-erase: ends empty with an
  // exact size count, under concurrent unlinking in shared buckets.
  Table t(8);
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 4000;
  std::vector<std::thread> ts;
  for (int i = 0; i < kThreads; ++i) {
    ts.emplace_back([&, i] {
      const uint64_t base = static_cast<uint64_t>(i) * kPerThread;
      for (uint64_t k = 0; k < kPerThread; ++k) {
        t.WithSlot(base + k, [](int64_t& v, bool inserted) {
          EXPECT_TRUE(inserted);
          v = 1;
        });
      }
      for (uint64_t k = 0; k < kPerThread; ++k) {
        EXPECT_TRUE(t.EraseIf(base + k, [](int64_t& v) { return v == 1; }));
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(t.size(), 0u);
  size_t n = 0;
  t.ForEach([&](const uint64_t&, int64_t&) { ++n; });
  EXPECT_EQ(n, 0u);
}

TEST(ShardedHashTableTest, MixedReadersWritersErasersStayCoherent) {
  // Readers observe only values writers actually published (0 is never
  // published: a reader seeing a slot sees it fully written).
  Table t(16);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> bad{0};
  constexpr uint64_t kKeys = 64;
  std::vector<std::thread> ts;
  for (int i = 0; i < 3; ++i) {
    ts.emplace_back([&, i] {  // writers
      for (int j = 0; j < 30000; ++j) {
        const uint64_t key = static_cast<uint64_t>(j * 7 + i) % kKeys;
        t.WithSlot(key, [](int64_t& v, bool) { v = 123; });
      }
    });
  }
  for (int i = 0; i < 2; ++i) {
    ts.emplace_back([&, i] {  // erasers
      for (int j = 0; j < 30000; ++j) {
        t.Erase(static_cast<uint64_t>(j * 13 + i) % kKeys);
      }
    });
  }
  for (int i = 0; i < 3; ++i) {
    ts.emplace_back([&] {  // readers
      while (!stop.load(std::memory_order_relaxed)) {
        for (uint64_t k = 0; k < kKeys; ++k) {
          t.WithSlotIfPresent(k, [&](int64_t& v) {
            if (v != 123) bad.fetch_add(1, std::memory_order_relaxed);
          });
        }
      }
    });
  }
  for (int i = 0; i < 5; ++i) ts[static_cast<size_t>(i)].join();
  stop.store(true, std::memory_order_relaxed);
  for (size_t i = 5; i < ts.size(); ++i) ts[i].join();
  EXPECT_EQ(bad.load(), 0u);
}

// --- ForEach visibility contract under concurrent mutation ------------------
// The header promises: a key present for the whole sweep is visited exactly
// once (no bucket-skip, no double-visit), keys inserted/erased mid-sweep may
// be seen or missed but never half-visited. These tests drive ForEach against
// concurrent WithSlot/EraseIf churn and check each clause.

TEST(ShardedHashTableForEachTest, StableKeysVisitedExactlyOncePerSweep) {
  // Stable keys carry value 1'000'000+k; churn keys (disjoint range) are
  // inserted and erased continuously by background threads while the main
  // thread sweeps. Every sweep must see each stable key exactly once.
  Table t(8);  // few buckets: stable and churn keys share chains
  constexpr uint64_t kStable = 64;
  for (uint64_t k = 0; k < kStable; ++k) {
    t.WithSlot(k, [&](int64_t& v, bool) {
      v = 1'000'000 + static_cast<int64_t>(k);
    });
  }
  std::atomic<bool> stop{false};
  std::vector<std::thread> churn;
  for (int i = 0; i < 4; ++i) {
    churn.emplace_back([&, i] {
      const uint64_t base = 1000 + static_cast<uint64_t>(i) * 500;
      uint64_t j = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const uint64_t key = base + (j % 500);
        t.WithSlot(key, [](int64_t& v, bool) { v = 7; });
        t.EraseIf(key, [](int64_t& v) { return v == 7; });
        ++j;
      }
    });
  }
  for (int sweep = 0; sweep < 200; ++sweep) {
    std::vector<int> seen(kStable, 0);
    t.ForEach([&](const uint64_t& k, int64_t& v) {
      if (k < kStable) {
        EXPECT_EQ(v, 1'000'000 + static_cast<int64_t>(k));
        ++seen[static_cast<size_t>(k)];
      } else {
        EXPECT_EQ(v, 7);  // churn entries are never seen half-written
      }
    });
    for (uint64_t k = 0; k < kStable; ++k) {
      ASSERT_EQ(seen[static_cast<size_t>(k)], 1)
          << "stable key " << k << " visited " << seen[static_cast<size_t>(k)]
          << " times in sweep " << sweep;
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : churn) th.join();
}

TEST(ShardedHashTableForEachTest, ConcurrentEraseNeverDoubleCountsAKey) {
  // Erasers drain a fixed population while sweeps run. Each sweep may see a
  // key 0 or 1 times (missed iff its bucket was walked after the erase) —
  // never twice — and successive sweep counts shrink to zero.
  Table t(4);
  constexpr uint64_t kKeys = 2048;
  for (uint64_t k = 0; k < kKeys; ++k) {
    t.WithSlot(k, [](int64_t& v, bool) { v = 1; });
  }
  std::vector<std::thread> erasers;
  for (int i = 0; i < 4; ++i) {
    erasers.emplace_back([&, i] {
      for (uint64_t k = static_cast<uint64_t>(i); k < kKeys; k += 4) {
        EXPECT_TRUE(t.EraseIf(k, [](int64_t& v) { return v == 1; }));
      }
    });
  }
  while (t.size() > 0) {
    std::vector<uint8_t> seen(kKeys, 0);
    t.ForEach([&](const uint64_t& k, int64_t& v) {
      EXPECT_EQ(v, 1);
      ASSERT_LT(k, kKeys);
      ASSERT_EQ(seen[static_cast<size_t>(k)], 0)
          << "key " << k << " double-visited during concurrent erase";
      seen[static_cast<size_t>(k)] = 1;
    });
  }
  for (auto& th : erasers) th.join();
  size_t n = 0;
  t.ForEach([&](const uint64_t&, int64_t&) { ++n; });
  EXPECT_EQ(n, 0u);
}

}  // namespace
}  // namespace tdp
