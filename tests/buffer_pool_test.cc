#include "buffer/buffer_pool.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace tdp::buffer {
namespace {

BufferPoolConfig SmallPool(size_t pages, SimDisk* disk = nullptr) {
  BufferPoolConfig cfg;
  cfg.capacity_pages = pages;
  cfg.disk = disk;
  return cfg;
}

PageId P(uint64_t n) { return PageId{0, n}; }

TEST(BufferPoolTest, FetchMissThenHit) {
  BufferPool pool(SmallPool(8));
  ASSERT_TRUE(pool.Fetch(P(1)).ok());
  pool.Unpin(P(1));
  ASSERT_TRUE(pool.Fetch(P(1)).ok());
  pool.Unpin(P(1));
  EXPECT_EQ(pool.stats().misses.load(), 1u);
  EXPECT_EQ(pool.stats().hits.load(), 1u);
  EXPECT_EQ(pool.resident_pages(), 1u);
}

TEST(BufferPoolTest, NewPagesEnterOldSublist) {
  BufferPool pool(SmallPool(16));
  ASSERT_TRUE(pool.Fetch(P(1)).ok());
  pool.Unpin(P(1));
  EXPECT_TRUE(pool.InOldSublist(P(1)));
}

TEST(BufferPoolTest, HitOnOldPageMovesItYoung) {
  BufferPool pool(SmallPool(16));
  // Load several pages so the lists can balance.
  for (uint64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(pool.Fetch(P(i)).ok());
    pool.Unpin(P(i));
  }
  // Find a page in the old list and touch it.
  uint64_t old_page = UINT64_MAX;
  for (uint64_t i = 0; i < 8; ++i) {
    if (pool.InOldSublist(P(i))) {
      old_page = i;
      break;
    }
  }
  ASSERT_NE(old_page, UINT64_MAX);
  ASSERT_TRUE(pool.Fetch(P(old_page)).ok());
  pool.Unpin(P(old_page));
  EXPECT_FALSE(pool.InOldSublist(P(old_page)));
  EXPECT_GE(pool.stats().make_young.load(), 1u);
}

TEST(BufferPoolTest, CapacityEnforcedByEviction) {
  BufferPool pool(SmallPool(8));
  for (uint64_t i = 0; i < 32; ++i) {
    ASSERT_TRUE(pool.Fetch(P(i)).ok());
    pool.Unpin(P(i));
  }
  EXPECT_LE(pool.resident_pages(), 8u);
  EXPECT_GE(pool.stats().evictions.load(), 24u);
}

TEST(BufferPoolTest, OldRatioApproximatelyMaintained) {
  BufferPool pool(SmallPool(64));
  for (uint64_t i = 0; i < 64; ++i) {
    ASSERT_TRUE(pool.Fetch(P(i)).ok());
    pool.Unpin(P(i));
  }
  auto [young, old] = pool.SublistLengths();
  EXPECT_EQ(young + old, 64u);
  // Target old fraction 3/8 = 24, with hysteresis slack.
  EXPECT_GE(old, 22u);
  EXPECT_LE(old, 26u);
}

TEST(BufferPoolTest, PinnedPagesAreNotEvicted) {
  BufferPool pool(SmallPool(4));
  ASSERT_TRUE(pool.Fetch(P(100)).ok());  // keep pinned
  for (uint64_t i = 0; i < 16; ++i) {
    ASSERT_TRUE(pool.Fetch(P(i)).ok());
    pool.Unpin(P(i));
  }
  // Page 100 must still be resident: a hit, not a miss.
  const uint64_t misses_before = pool.stats().misses.load();
  ASSERT_TRUE(pool.Fetch(P(100)).ok());
  EXPECT_EQ(pool.stats().misses.load(), misses_before);
  pool.Unpin(P(100));
  pool.Unpin(P(100));
}

TEST(BufferPoolTest, DirtyEvictionWritesBack) {
  SimDiskConfig dcfg;
  dcfg.base_latency_ns = 1000;
  dcfg.sigma = 0;
  dcfg.flush_barrier_ns = 0;
  SimDisk disk(dcfg);
  BufferPool pool(SmallPool(2, &disk));
  ASSERT_TRUE(pool.Fetch(P(1)).ok());
  pool.MarkDirty(P(1));
  pool.Unpin(P(1));
  for (uint64_t i = 2; i < 8; ++i) {
    ASSERT_TRUE(pool.Fetch(P(i)).ok());
    pool.Unpin(P(i));
  }
  EXPECT_GE(pool.stats().dirty_writebacks.load(), 1u);
  EXPECT_GE(disk.stats().writes.load(), 1u);
}

TEST(BufferPoolTest, PageGuardUnpinsOnScopeExit) {
  BufferPool pool(SmallPool(2));
  {
    Result<BufferPool::PageGuard> guard = pool.Pin(P(1));
    ASSERT_TRUE(guard.ok());
  }
  // After the guard released, page 1 is evictable.
  for (uint64_t i = 2; i < 8; ++i) {
    ASSERT_TRUE(pool.Fetch(P(i)).ok());
    pool.Unpin(P(i));
  }
  EXPECT_LE(pool.resident_pages(), 2u);
}

TEST(BufferPoolTest, ConcurrentFetchesOfSamePageSingleRead) {
  SimDiskConfig dcfg;
  dcfg.base_latency_ns = 2000000;  // 2ms read: wide race window
  dcfg.sigma = 0;
  SimDisk disk(dcfg);
  BufferPool pool(SmallPool(8, &disk));
  constexpr int kThreads = 8;
  std::vector<std::thread> ts;
  for (int i = 0; i < kThreads; ++i) {
    ts.emplace_back([&] {
      ASSERT_TRUE(pool.Fetch(P(42)).ok());
      pool.Unpin(P(42));
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(pool.stats().misses.load(), 1u);  // io-fix coalesced the reads
  EXPECT_EQ(disk.stats().reads.load(), 1u);
  EXPECT_EQ(pool.stats().hits.load(), static_cast<uint64_t>(kThreads) - 1);
}

TEST(BufferPoolTest, ConcurrentMixedWorkloadInvariants) {
  BufferPool pool(SmallPool(32));
  constexpr int kThreads = 8, kIters = 2000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const PageId id = P((t * 7919 + i) % 128);
        ASSERT_TRUE(pool.Fetch(id).ok());
        if (i % 3 == 0) pool.MarkDirty(id);
        pool.Unpin(id);
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_LE(pool.resident_pages(), 32u + kThreads);  // bounded overshoot
  auto [young, old] = pool.SublistLengths();
  EXPECT_EQ(young + old, pool.resident_pages());
}

}  // namespace
}  // namespace tdp::buffer
