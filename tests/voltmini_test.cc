#include "volt/voltmini.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "common/work.h"

namespace tdp::volt {
namespace {

TEST(VoltMiniTest, ExecuteRunsProcedure) {
  VoltMini db(VoltMiniConfig{});
  db.Start();
  std::atomic<int> ran{0};
  auto ticket = db.Execute(0, [&] { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 1);
  EXPECT_GT(ticket->done_ns, ticket->submit_ns);
  EXPECT_GE(ticket->dequeue_ns, ticket->submit_ns);
  db.Stop();
}

TEST(VoltMiniTest, TicketTimestampsDecompose) {
  VoltMini db(VoltMiniConfig{});
  db.Start();
  auto ticket = db.Execute(1, [] { SpinFor(500000); });
  EXPECT_GE(ticket->exec_ns(), 400000);
  EXPECT_GE(ticket->queue_wait_ns(), 0);
  EXPECT_EQ(ticket->latency_ns(),
            ticket->queue_wait_ns() + ticket->exec_ns());
  db.Stop();
}

TEST(VoltMiniTest, AllSubmittedTasksComplete) {
  VoltMiniConfig cfg;
  cfg.num_workers = 4;
  VoltMini db(cfg);
  db.Start();
  std::atomic<int> done{0};
  std::vector<std::shared_ptr<VoltMini::Ticket>> tickets;
  for (int i = 0; i < 200; ++i) {
    tickets.push_back(db.Submit(i % cfg.num_partitions,
                                [&] { done.fetch_add(1); }));
  }
  for (auto& t : tickets) t->Wait();
  EXPECT_EQ(done.load(), 200);
  db.Stop();
}

TEST(VoltMiniTest, PartitionExecutionIsSerialized) {
  VoltMiniConfig cfg;
  cfg.num_workers = 8;
  cfg.num_partitions = 1;  // everything serializes on one partition
  VoltMini db(cfg);
  db.Start();
  int counter = 0;  // unsynchronized on purpose: serialization protects it
  std::vector<std::shared_ptr<VoltMini::Ticket>> tickets;
  for (int i = 0; i < 500; ++i) {
    tickets.push_back(db.Submit(0, [&] { ++counter; }));
  }
  for (auto& t : tickets) t->Wait();
  EXPECT_EQ(counter, 500);
  db.Stop();
}

TEST(VoltMiniTest, FewWorkersMeansLongerQueueWaits) {
  auto mean_queue_wait = [](int workers) {
    VoltMiniConfig cfg;
    cfg.num_workers = workers;
    cfg.num_partitions = 16;
    VoltMini db(cfg);
    db.Start();
    std::vector<std::shared_ptr<VoltMini::Ticket>> tickets;
    for (int i = 0; i < 64; ++i) {
      // Sleep-based service time: parallelizes across workers even on a
      // single-core machine (procedures model I/O-inclusive service).
      tickets.push_back(db.Submit(i % 16, [] {
        std::this_thread::sleep_for(std::chrono::microseconds(300));
      }));
    }
    int64_t total = 0;
    for (auto& t : tickets) {
      t->Wait();
      total += t->queue_wait_ns();
    }
    db.Stop();
    return total / static_cast<int64_t>(tickets.size());
  };
  const int64_t wait2 = mean_queue_wait(2);
  const int64_t wait8 = mean_queue_wait(8);
  EXPECT_GT(wait2, wait8);  // Fig. 7's mechanism (loose: host noise)
}

TEST(VoltMiniTest, StopDrainsQueue) {
  VoltMini db(VoltMiniConfig{});
  db.Start();
  std::atomic<int> done{0};
  for (int i = 0; i < 50; ++i) {
    db.Submit(0, [&] { done.fetch_add(1); });
  }
  db.Stop();  // must process everything already queued
  EXPECT_EQ(done.load(), 50);
}

TEST(VoltMiniTest, RestartWorks) {
  VoltMini db(VoltMiniConfig{});
  db.Start();
  db.Stop();
  db.Start();
  std::atomic<int> ran{0};
  db.Execute(0, [&] { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 1);
  db.Stop();
}

}  // namespace
}  // namespace tdp::volt
