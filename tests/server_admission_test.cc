// TransactionService and AdmissionQueue: bounded depth under overload, shed
// accounting, dispatch-order properties, and clean drain at shutdown.
#include "server/service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/crash_point.h"
#include "common/random.h"
#include "engine/factory.h"

namespace tdp::server {
namespace {

std::unique_ptr<engine::Database> OpenFast() {
  engine::EngineConfig config;
  config.mysql.row_work_ns = 0;
  config.mysql.btree.level_work_ns = 0;
  config.mysql.data_disk.base_latency_ns = 0;
  config.mysql.data_disk.sigma = 0;
  config.mysql.log_disk.base_latency_ns = 0;
  config.mysql.log_disk.sigma = 0;
  config.mysql.log_disk.flush_barrier_ns = 0;
  auto db = engine::OpenDatabase(engine::EngineKind::kMySQLMini, config);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return std::move(db.value());
}

uint32_t LoadOneTable(engine::Database* db) {
  const uint32_t t = db->CreateTable("t", 64);
  for (uint64_t k = 0; k < 16; ++k) db->BulkUpsert(t, k, storage::Row{0});
  return t;
}

/// A latch the test holds closed to pin workers inside a transaction body,
/// making queue occupancy deterministic.
class Gate {
 public:
  void Open() {
    std::lock_guard<std::mutex> g(mu_);
    open_ = true;
    cv_.notify_all();
  }
  void Wait() {
    std::unique_lock<std::mutex> l(mu_);
    cv_.wait(l, [&] { return open_; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
};

// --- AdmissionQueue unit properties ----------------------------------------

TEST(AdmissionQueueTest, PushFailsAtMaxDepthAndDropsNothing) {
  AdmissionQueue<int> q(DispatchPolicy::kFifo, 3);
  EXPECT_TRUE(q.Push(1, 10));
  EXPECT_TRUE(q.Push(2, 20));
  EXPECT_TRUE(q.Push(3, 30));
  EXPECT_TRUE(q.full());
  EXPECT_FALSE(q.Push(4, 40));
  EXPECT_EQ(q.size(), 3u);
  AdmissionQueue<int>::Entry e;
  ASSERT_TRUE(q.Pop(&e));
  EXPECT_EQ(e.item, 1);  // the rejected push left the order untouched
}

TEST(AdmissionQueueTest, FifoDispatchesInPushOrderIgnoringAdmitTimes) {
  AdmissionQueue<int> q(DispatchPolicy::kFifo, 64);
  // Admission times deliberately reversed: FIFO must ignore them.
  for (int i = 0; i < 10; ++i) q.Push(i, /*admit_ns=*/1000 - i);
  for (int i = 0; i < 10; ++i) {
    AdmissionQueue<int>::Entry e;
    ASSERT_TRUE(q.Pop(&e));
    EXPECT_EQ(e.item, i);
  }
}

TEST(AdmissionQueueTest, EldestFirstOrderingProperty) {
  // Property: popping a kEldestFirst queue yields non-decreasing admit_ns,
  // with push order (seq) breaking ties — across random interleavings of
  // pushes and pops.
  Rng rng(1234);
  for (int round = 0; round < 50; ++round) {
    AdmissionQueue<int> q(DispatchPolicy::kEldestFirst, 1024);
    int64_t last_admit = -1;
    uint64_t last_seq = 0;
    bool have_last = false;
    int pushed = 0;
    while (pushed < 200 || !q.empty()) {
      const bool can_push = pushed < 200;
      if (can_push && (q.empty() || rng.Bernoulli(0.6))) {
        // Small admit range forces plenty of ties onto the seq tiebreak.
        q.Push(pushed++, static_cast<int64_t>(rng.Uniform(20)));
        continue;
      }
      AdmissionQueue<int>::Entry e;
      ASSERT_TRUE(q.Pop(&e));
      if (have_last && last_admit == e.admit_ns) {
        EXPECT_LT(last_seq, e.seq) << "tie not broken by push order";
      }
      // A pop resets the floor only per drain segment: entries pushed after
      // this pop may be older. Compare only within what was queued together.
      last_admit = e.admit_ns;
      last_seq = e.seq;
      have_last = true;
    }
  }
}

TEST(AdmissionQueueTest, EldestFirstFullDrainIsSortedByAdmitTime) {
  Rng rng(99);
  AdmissionQueue<int> q(DispatchPolicy::kEldestFirst, 512);
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(q.Push(i, static_cast<int64_t>(rng.Uniform(1000))));
  }
  auto drained = q.PopAll();
  ASSERT_EQ(drained.size(), 300u);
  for (size_t i = 1; i < drained.size(); ++i) {
    EXPECT_LE(drained[i - 1].admit_ns, drained[i].admit_ns);
    if (drained[i - 1].admit_ns == drained[i].admit_ns) {
      EXPECT_LT(drained[i - 1].seq, drained[i].seq);
    }
  }
}

// --- requeue order stability ------------------------------------------------

// The audit this pins: under the age-ordered policies a requeued entry must
// keep its original seq, not take a fresh one. With a fresh seq, two entries
// admitted at the same timestamp would swap places every time one of them
// bounced through a requeue — the eldest-first total order would not be
// stable under requeue.
TEST(AdmissionQueueTest, RequeuePreservesSeqUnderEldestFirst) {
  AdmissionQueue<int> q(DispatchPolicy::kEldestFirst, 64);
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(q.Push(i, /*admit_ns=*/100));
  AdmissionQueue<int>::Entry a, b;
  ASSERT_TRUE(q.Pop(&a));
  ASSERT_TRUE(q.Pop(&b));
  EXPECT_EQ(a.item, 0);
  EXPECT_EQ(b.item, 1);
  // Requeue in reverse: seq (not requeue order) must decide.
  ASSERT_TRUE(q.Requeue(std::move(b)));
  ASSERT_TRUE(q.Requeue(std::move(a)));
  for (int expect = 0; expect < 6; ++expect) {
    AdmissionQueue<int>::Entry e;
    ASSERT_TRUE(q.Pop(&e));
    EXPECT_EQ(e.item, expect);
  }
}

TEST(AdmissionQueueTest, FifoRequeueGoesToTheBack) {
  // kFifo documents "requeues go to the back": a requeue is a fresh arrival
  // and takes a new seq.
  AdmissionQueue<int> q(DispatchPolicy::kFifo, 64);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(q.Push(i, /*admit_ns=*/100));
  AdmissionQueue<int>::Entry e;
  ASSERT_TRUE(q.Pop(&e));
  EXPECT_EQ(e.item, 0);
  ASSERT_TRUE(q.Requeue(std::move(e)));
  std::vector<int> drained;
  while (q.Pop(&e)) drained.push_back(e.item);
  EXPECT_EQ(drained, (std::vector<int>{1, 2, 0}));
}

// Property: across random interleavings of pushes, pops, and requeues, an
// eldest-first queue's dispatch order is always exactly the sorted
// (admit_ns, original seq) order — requeues cannot reshuffle it.
TEST(AdmissionQueueTest, EldestFirstTotalOrderStableUnderRequeue) {
  Rng rng(7);
  for (int round = 0; round < 30; ++round) {
    AdmissionQueue<int> q(DispatchPolicy::kEldestFirst, 1024);
    // item -> (admit_ns, seq) as assigned at first push.
    std::vector<std::pair<int64_t, uint64_t>> key;
    std::vector<AdmissionQueue<int>::Entry> popped;
    int pushed = 0;
    const int total = 120;
    while (pushed < total || !q.empty() || !popped.empty()) {
      const int choice = static_cast<int>(rng.Uniform(3));
      if (choice == 0 && pushed < total) {
        // Small admit range: most of the order rides on the seq tiebreak.
        const int64_t admit = static_cast<int64_t>(rng.Uniform(8));
        ASSERT_TRUE(q.Push(pushed, admit));
        key.emplace_back(admit, 0);  // seq learned at pop below
        ++pushed;
        continue;
      }
      if (choice == 1 && !popped.empty()) {
        const size_t i = rng.Uniform(popped.size());
        ASSERT_TRUE(q.Requeue(std::move(popped[i])));
        popped.erase(popped.begin() + static_cast<std::ptrdiff_t>(i));
        continue;
      }
      AdmissionQueue<int>::Entry e;
      if (!q.Pop(&e)) continue;
      key[static_cast<size_t>(e.item)] = {e.admit_ns, e.seq};
      // Hold some entries aside to requeue later, final-drain the rest.
      if (rng.Bernoulli(0.4) && popped.size() < 8) {
        popped.push_back(std::move(e));
      }
    }
    // Replay: push everything once more and drain with no requeues; the
    // drain order must equal sorting by the original (admit_ns, seq) —
    // i.e. the requeue-laden history never changed any entry's key.
    for (int i = 0; i < total; ++i) {
      ASSERT_TRUE(q.Push(i, key[static_cast<size_t>(i)].first));
    }
    std::vector<int> expect(total);
    for (int i = 0; i < total; ++i) expect[i] = i;
    std::stable_sort(expect.begin(), expect.end(), [&](int a, int b) {
      return key[static_cast<size_t>(a)] < key[static_cast<size_t>(b)];
    });
    AdmissionQueue<int>::Entry e;
    for (int i = 0; i < total; ++i) {
      ASSERT_TRUE(q.Pop(&e));
      EXPECT_EQ(e.item, expect[static_cast<size_t>(i)]) << "round " << round;
    }
  }
}

// --- TransactionService ----------------------------------------------------

TEST(TransactionServiceTest, BoundedDepthUnderOverloadShedsExactly) {
  auto db = OpenFast();
  const uint32_t table = LoadOneTable(db.get());

  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.max_queue_depth = 4;
  TransactionService svc(db.get(), cfg);
  svc.Start();

  Gate gate;
  std::atomic<int> entered{0};
  // Pin the single worker inside a transaction, then fill the queue.
  ASSERT_TRUE(svc.Submit([&](engine::Connection& c) {
                    entered.fetch_add(1);
                    gate.Wait();
                    return c.Update(table, 0, 0, 1);
                  })
                  .ok());
  while (entered.load() == 0) std::this_thread::yield();

  uint64_t accepted = 0, rejected = 0;
  for (int i = 0; i < 10; ++i) {
    const Status s =
        svc.Submit([&](engine::Connection& c) { return c.Update(table, 1, 0, 1); });
    if (s.ok()) {
      ++accepted;
    } else {
      EXPECT_TRUE(s.IsOverloaded()) << s.ToString();
      ++rejected;
    }
  }
  // Exactly max_queue_depth fit behind the pinned worker.
  EXPECT_EQ(accepted, cfg.max_queue_depth);
  EXPECT_EQ(rejected, 10 - cfg.max_queue_depth);
  EXPECT_EQ(svc.queue_depth(), cfg.max_queue_depth);

  gate.Open();
  svc.Shutdown();

  const TransactionService::Stats st = svc.stats();
  EXPECT_EQ(st.submitted, 11u);
  EXPECT_EQ(st.shed, rejected);
  EXPECT_EQ(st.admitted + st.shed, st.submitted);
  EXPECT_EQ(st.completed + st.expired + st.drain_aborted, st.admitted);
  EXPECT_EQ(svc.queue_depth(), 0u);
}

TEST(TransactionServiceTest, ShedSubmitNeverInvokesCallback) {
  auto db = OpenFast();
  const uint32_t table = LoadOneTable(db.get());

  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.max_queue_depth = 1;
  TransactionService svc(db.get(), cfg);
  svc.Start();

  Gate gate;
  std::atomic<int> entered{0};
  std::atomic<int> callbacks{0};
  auto done = [&](const Response&) { callbacks.fetch_add(1); };
  ASSERT_TRUE(svc.Submit([&](engine::Connection& c) {
                    entered.fetch_add(1);
                    gate.Wait();
                    return c.Update(table, 0, 0, 1);
                  },
                         done)
                  .ok());
  while (entered.load() == 0) std::this_thread::yield();
  ASSERT_TRUE(
      svc.Submit([&](engine::Connection& c) { return c.Update(table, 1, 0, 1); },
                 done)
          .ok());
  const Status shed =
      svc.Submit([&](engine::Connection& c) { return c.Update(table, 2, 0, 1); },
                 done);
  EXPECT_TRUE(shed.IsOverloaded());
  gate.Open();
  svc.Shutdown();
  EXPECT_EQ(callbacks.load(), 2);  // the shed submit's callback never fired
  EXPECT_EQ(svc.stats().shed, 1u);
}

TEST(TransactionServiceTest, DrainCompletesBacklogWithZeroLeaks) {
  auto db = OpenFast();
  const uint32_t table = LoadOneTable(db.get());

  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.max_queue_depth = 4096;
  TransactionService svc(db.get(), cfg);
  svc.Start();

  std::atomic<uint64_t> callbacks{0}, ok{0};
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(svc.Submit(
                       [&, i](engine::Connection& c) {
                         return c.Update(table, static_cast<uint64_t>(i % 16),
                                         0, 1);
                       },
                       [&](const Response& r) {
                         callbacks.fetch_add(1);
                         if (r.status.ok()) ok.fetch_add(1);
                       })
                    .ok());
  }
  svc.Shutdown();  // drain_completes_backlog=true: everything runs

  EXPECT_EQ(callbacks.load(), static_cast<uint64_t>(n));
  const TransactionService::Stats st = svc.stats();
  EXPECT_EQ(st.submitted, static_cast<uint64_t>(n));
  EXPECT_EQ(st.admitted, static_cast<uint64_t>(n));
  EXPECT_EQ(st.shed, 0u);
  EXPECT_EQ(st.completed, static_cast<uint64_t>(n));
  EXPECT_EQ(st.completed_ok, ok.load());
  EXPECT_EQ(st.drain_aborted, 0u);
  EXPECT_EQ(svc.queue_depth(), 0u);
  // Every row delta landed: no transaction was lost or double-run.
  uint64_t total = 0;
  auto conn = db->Connect();
  ASSERT_TRUE(conn->Begin().ok());
  for (uint64_t k = 0; k < 16; ++k) {
    ASSERT_TRUE(conn->Select(table, k).ok());
    total += static_cast<uint64_t>(*conn->ReadColumn(table, k, 0));
  }
  ASSERT_TRUE(conn->Commit().ok());
  EXPECT_EQ(total, ok.load());
}

TEST(TransactionServiceTest, AbortingDrainDeliversAbortedToBacklog) {
  auto db = OpenFast();
  const uint32_t table = LoadOneTable(db.get());

  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.max_queue_depth = 64;
  cfg.drain_completes_backlog = false;
  TransactionService svc(db.get(), cfg);
  svc.Start();

  Gate gate;
  std::atomic<int> entered{0};
  std::atomic<uint64_t> aborted_callbacks{0}, ok_callbacks{0};
  ASSERT_TRUE(svc.Submit([&](engine::Connection& c) {
                    entered.fetch_add(1);
                    gate.Wait();
                    return c.Update(table, 0, 0, 1);
                  },
                         [&](const Response& r) {
                           if (r.status.ok()) ok_callbacks.fetch_add(1);
                         })
                  .ok());
  while (entered.load() == 0) std::this_thread::yield();
  const int backlog = 5;
  for (int i = 0; i < backlog; ++i) {
    ASSERT_TRUE(svc.Submit(
                       [&](engine::Connection& c) {
                         return c.Update(table, 1, 0, 1);
                       },
                       [&](const Response& r) {
                         EXPECT_TRUE(r.status.IsAborted())
                             << r.status.ToString();
                         EXPECT_EQ(r.dispatches, 0);
                         aborted_callbacks.fetch_add(1);
                       })
                    .ok());
  }
  gate.Open();
  svc.Shutdown();

  const TransactionService::Stats st = svc.stats();
  EXPECT_EQ(aborted_callbacks.load(), static_cast<uint64_t>(backlog));
  EXPECT_EQ(st.drain_aborted, static_cast<uint64_t>(backlog));
  // The in-flight transaction still ran to completion.
  EXPECT_EQ(ok_callbacks.load(), 1u);
  EXPECT_EQ(st.completed + st.expired + st.drain_aborted, st.admitted);
  EXPECT_EQ(svc.queue_depth(), 0u);
}

TEST(TransactionServiceTest, QueueAgeDeadlineExpiresStaleRequests) {
  auto db = OpenFast();
  const uint32_t table = LoadOneTable(db.get());

  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.max_queue_depth = 64;
  cfg.max_queue_age_ns = MillisToNanos(5);
  TransactionService svc(db.get(), cfg);
  svc.Start();

  Gate gate;
  std::atomic<int> entered{0};
  std::atomic<uint64_t> overloaded{0};
  ASSERT_TRUE(svc.Submit([&](engine::Connection& c) {
                    entered.fetch_add(1);
                    gate.Wait();
                    return c.Update(table, 0, 0, 1);
                  })
                  .ok());
  while (entered.load() == 0) std::this_thread::yield();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(svc.Submit(
                       [&](engine::Connection& c) {
                         return c.Update(table, 1, 0, 1);
                       },
                       [&](const Response& r) {
                         if (r.status.IsOverloaded()) overloaded.fetch_add(1);
                       })
                    .ok());
  }
  // Let the backlog age well past the deadline before releasing the worker.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  gate.Open();
  svc.Shutdown();

  const TransactionService::Stats st = svc.stats();
  EXPECT_EQ(st.expired, 4u);
  EXPECT_EQ(overloaded.load(), 4u);
  EXPECT_EQ(st.shed, 0u);  // deadline drops are expirations, not door sheds
  EXPECT_EQ(st.completed + st.expired + st.drain_aborted, st.admitted);
}

TEST(TransactionServiceTest, SubmitAfterShutdownShedsWithOverloaded) {
  auto db = OpenFast();
  const uint32_t table = LoadOneTable(db.get());
  ServiceConfig cfg;
  cfg.workers = 1;
  TransactionService svc(db.get(), cfg);
  svc.Start();
  svc.Shutdown();
  const Status s =
      svc.Submit([&](engine::Connection& c) { return c.Update(table, 0, 0, 1); });
  EXPECT_TRUE(s.IsOverloaded());
  EXPECT_EQ(svc.stats().shed, 1u);
  svc.Shutdown();  // idempotent
}

TEST(TransactionServiceTest, ExecuteReturnsTimestampedResponse) {
  auto db = OpenFast();
  const uint32_t table = LoadOneTable(db.get());
  ServiceConfig cfg;
  cfg.workers = 2;
  TransactionService svc(db.get(), cfg);
  svc.Start();
  const Response r = svc.Execute(
      [&](engine::Connection& c) { return c.Update(table, 3, 0, 7); });
  EXPECT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_GT(r.submit_ns, 0);
  EXPECT_GE(r.dispatch_ns, r.submit_ns);
  EXPECT_GE(r.done_ns, r.dispatch_ns);
  EXPECT_EQ(r.dispatches, 1);
  svc.Shutdown();
}

// --- requeue vs. queue-age deadline ----------------------------------------

// The audit this pins: a retryable abort requeues with the ORIGINAL admit
// time, so by its second dispatch a request can be far past max_queue_age_ns.
// The expiry check must exempt already-dispatched requests
// (entry.item->dispatches == 0 guard) — otherwise the request would be
// counted in server.expired after its dispatch already started the path to
// server.completed, double-counting it against server.admitted.
TEST(TransactionServiceTest, RequeuePastDeadlineCompletesExactlyOnce) {
  auto db = OpenFast();
  const uint32_t table = LoadOneTable(db.get());

  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.max_queue_depth = 64;
  cfg.max_queue_age_ns = MillisToNanos(50);
  cfg.retry.max_attempts = 1;  // retryable aborts requeue, not retry inline
  TransactionService svc(db.get(), cfg);
  svc.Start();

  // First dispatch: hold the request well past the deadline, then fail with
  // a retryable error so it requeues with its original admit time. Second
  // dispatch: its queue age is ~120ms > 50ms — the deadline would fire if
  // the dispatches==0 exemption were missing.
  std::atomic<int> calls{0};
  const Response r = svc.Execute([&](engine::Connection& c) -> Status {
    if (calls.fetch_add(1) == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(120));
      return Status::Deadlock("synthetic retryable failure");
    }
    return c.Update(table, 0, 0, 1);
  });
  svc.Shutdown();

  EXPECT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.dispatches, 2);
  EXPECT_EQ(calls.load(), 2);

  const TransactionService::Stats st = svc.stats();
  EXPECT_EQ(st.admitted, 1u);
  EXPECT_EQ(st.requeues, 1u);
  EXPECT_EQ(st.completed, 1u);
  EXPECT_EQ(st.completed_ok, 1u);
  EXPECT_EQ(st.expired, 0u);  // the double-count the audit rules out
  EXPECT_EQ(st.completed + st.expired + st.drain_aborted, st.admitted);
}

// Mixed stress: expiring first-dispatch requests and requeueing victims race
// on the same queue, and the accounting identities must stay exact — each
// admitted request reaches exactly one of {completed, expired,
// drain_aborted} and fires exactly one callback.
TEST(TransactionServiceTest, RequeueAndExpiryRaceKeepsAccountingExact) {
  auto db = OpenFast();
  const uint32_t table = LoadOneTable(db.get());

  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.max_queue_depth = 256;
  cfg.max_queue_age_ns = MillisToNanos(1);
  cfg.retry.max_attempts = 1;
  TransactionService svc(db.get(), cfg);
  svc.Start();

  // Pin both workers so the backlog ages past the 1ms deadline; the pinned
  // bodies themselves fail retryable once, covering requeue-under-pressure.
  Gate gate;
  std::atomic<int> entered{0};
  std::atomic<uint64_t> callbacks{0};
  auto done = [&](const Response&) { callbacks.fetch_add(1); };
  std::atomic<int> pinned_calls{0};
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(svc.Submit([&](engine::Connection& c) -> Status {
                      if (pinned_calls.fetch_add(1) < 2) {
                        entered.fetch_add(1);
                        gate.Wait();
                        return Status::Deadlock("synthetic");
                      }
                      return c.Update(table, 0, 0, 1);
                    },
                           done)
                    .ok());
  }
  while (entered.load() < 2) std::this_thread::yield();

  Rng rng(42);
  uint64_t admitted_by_test = 2;
  for (int i = 0; i < 60; ++i) {
    const bool flaky = rng.Bernoulli(0.3);
    auto counter = std::make_shared<std::atomic<int>>(0);
    const Status s = svc.Submit(
        [&, flaky, counter](engine::Connection& c) -> Status {
          if (flaky && counter->fetch_add(1) == 0) {
            return Status::Deadlock("synthetic");
          }
          return c.Update(table, 1 + rng.Uniform(8), 0, 1);
        },
        done);
    if (s.ok()) ++admitted_by_test;
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  gate.Open();
  // Let every admitted request reach its final status while the service is
  // still running — a stopping service refuses requeues, which would turn
  // the pinned bodies' deadlocks into plain failures instead of requeues.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (callbacks.load() < admitted_by_test &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  svc.Shutdown();

  const TransactionService::Stats st = svc.stats();
  EXPECT_EQ(st.admitted, admitted_by_test);
  EXPECT_EQ(st.admitted + st.shed + st.rejected_recovering, st.submitted);
  EXPECT_EQ(st.completed + st.expired + st.drain_aborted, st.admitted);
  EXPECT_EQ(callbacks.load(), st.admitted);  // exactly one outcome each
  EXPECT_GT(st.expired, 0u);   // the aged backlog did expire
  EXPECT_GT(st.requeues, 0u);  // and retryable victims did requeue
  EXPECT_EQ(svc.queue_depth(), 0u);
}

// --- startup recovery barrier ----------------------------------------------

TEST(TransactionServiceTest, RecoveryBarrierRejectsWithUnavailableNotShed) {
  auto db = OpenFast();
  const uint32_t table = LoadOneTable(db.get());
  ServiceConfig cfg;
  cfg.workers = 1;
  TransactionService svc(db.get(), cfg);
  svc.Start();
  svc.BeginRecovery();
  EXPECT_TRUE(svc.recovering());

  bool callback_ran = false;
  const Status s = svc.Submit(
      [&](engine::Connection& c) { return c.Update(table, 0, 0, 1); },
      [&](const Response&) { callback_ran = true; });
  EXPECT_TRUE(s.IsUnavailable()) << s.ToString();
  EXPECT_FALSE(s.IsOverloaded());
  EXPECT_FALSE(callback_ran);  // rejected before admission: no callback

  // Counted under its own bucket, not shed — and the accounting identity
  // holds with the third rejection class.
  TransactionService::Stats st = svc.stats();
  EXPECT_EQ(st.rejected_recovering, 1u);
  EXPECT_EQ(st.shed, 0u);
  EXPECT_EQ(st.admitted + st.shed + st.rejected_recovering, st.submitted);

  svc.EndRecovery();
  EXPECT_FALSE(svc.recovering());
  const Response r = svc.Execute(
      [&](engine::Connection& c) { return c.Update(table, 0, 0, 1); });
  EXPECT_TRUE(r.status.ok()) << r.status.ToString();
  svc.Shutdown();

  st = svc.stats();
  EXPECT_EQ(st.submitted, 2u);
  EXPECT_EQ(st.admitted, 1u);
  EXPECT_EQ(st.admitted + st.shed + st.rejected_recovering, st.submitted);
}

// --- sharded engine: routing tier and expiry-after-prepare ------------------

std::unique_ptr<engine::Database> OpenFastSharded(int num_shards,
                                                  int repl_replicas = 1) {
  engine::EngineConfig config;
  config.sharded.num_shards = num_shards;
  auto& shard = config.sharded.shard;
  shard.row_work_ns = 0;
  shard.btree.level_work_ns = 0;
  for (SimDiskConfig* d :
       {&shard.data_disk, &shard.log_disk, &shard.repl_disk}) {
    d->base_latency_ns = 0;
    d->sigma = 0;
    d->flush_barrier_ns = 0;
  }
  shard.repl_replicas = repl_replicas;
  auto db = engine::OpenDatabase(engine::EngineKind::kSharded, config);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return std::move(db.value());
}

TEST(TransactionServiceTest, RoutingTierClassifiesFootprintsByShardMask) {
  auto db = OpenFastSharded(4);
  auto* sharded = static_cast<engine::ShardedDatabase*>(db.get());
  const uint32_t table = db->CreateTable("t", 64);
  for (uint64_t k = 0; k < 64; ++k) db->BulkUpsert(table, k, storage::Row{0});

  auto& reg = metrics::Registry::Global();
  const uint64_t single0 = reg.GetCounter("shard.routed_single")->value();
  const uint64_t cross0 = reg.GetCounter("shard.routed_cross")->value();

  // One key per footprint: necessarily single-shard. Two keys on different
  // shards: cross. The service's door classifies from the declared
  // footprint alone — before any engine work.
  uint64_t key_a = 0, key_b = 1;
  while (sharded->router().ShardOf(table, key_b) ==
         sharded->router().ShardOf(table, key_a)) {
    ++key_b;
  }
  const auto fp = [&](std::initializer_list<uint64_t> keys) {
    std::vector<uint64_t> out;
    for (uint64_t k : keys) {
      out.push_back(sched::ConflictPredictor::Fingerprint(table, k));
    }
    return out;
  };

  ServiceConfig cfg;
  cfg.workers = 1;
  TransactionService svc(db.get(), cfg);
  svc.Start();
  std::mutex mu;
  std::condition_variable cv;
  int done_count = 0;
  auto done = [&](const Response&) {
    std::lock_guard<std::mutex> g(mu);
    ++done_count;
    cv.notify_one();
  };
  auto body_for = [&](uint64_t k1, uint64_t k2) {
    return [=](engine::Connection& c) -> Status {
      Status s = c.Update(table, k1, 0, 1);
      if (!s.ok()) return s;
      return c.Update(table, k2, 0, 1);
    };
  };
  ASSERT_TRUE(svc.Submit(body_for(key_a, key_a), fp({key_a}), done).ok());
  ASSERT_TRUE(svc.Submit(body_for(key_b, key_b), fp({key_b}), done).ok());
  ASSERT_TRUE(
      svc.Submit(body_for(key_a, key_b), fp({key_a, key_b}), done).ok());
  {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return done_count == 3; });
  }
  svc.Shutdown();

  EXPECT_EQ(reg.GetCounter("shard.routed_single")->value() - single0, 2u);
  EXPECT_EQ(reg.GetCounter("shard.routed_cross")->value() - cross0, 1u);
}

// The expiry-after-prepare hazard (docs/sharding.md): a cross-shard request
// whose first dispatch reached the 2PC prepare phase and then failed
// retryably (here: one shard's quorum unreachable) requeues with its
// ORIGINAL admit time. By redispatch it is far past max_queue_age_ns; if the
// dispatches==0 exemption were missing the service would drop as "expired" a
// request that already sent prepares — work a coordinator may be counting
// on. The crash-point recorder proves the first dispatch really entered the
// 2PC path before the requeue.
TEST(TransactionServiceTest, RequeueAfter2PCPrepareNeverExpires) {
  auto db = OpenFastSharded(2, /*repl_replicas=*/3);
  auto* sharded = static_cast<engine::ShardedDatabase*>(db.get());
  const uint32_t table = db->CreateTable("t", 64);
  for (uint64_t k = 0; k < 64; ++k) db->BulkUpsert(table, k, storage::Row{0});
  uint64_t key0 = 0;
  while (sharded->router().ShardOf(table, key0) != 0) ++key0;
  uint64_t key1 = 0;
  while (sharded->router().ShardOf(table, key1) != 1) ++key1;

  // Shard 1 loses its quorum: every PREPARE there fails Unavailable until
  // the replicas come back.
  ASSERT_NE(sharded->shard(1)->quorum_log(), nullptr);
  sharded->shard(1)->quorum_log()->KillReplica(1);
  sharded->shard(1)->quorum_log()->KillReplica(2);

  CrashPoints::Global().Reset();
  CrashPoints::Global().SetRecording(true);

  auto& reg = metrics::Registry::Global();
  const uint64_t presumed0 = reg.GetCounter("2pc.aborted_presumed")->value();

  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.max_queue_age_ns = MillisToNanos(20);
  cfg.retry.max_attempts = 1;  // retryable failures requeue, not retry inline
  TransactionService svc(db.get(), cfg);
  svc.Start();

  std::atomic<int> calls{0};
  const Response r = svc.Execute([&](engine::Connection& c) -> Status {
    if (calls.fetch_add(1) == 1) {
      // Second dispatch: heal the quorum so this attempt's 2PC succeeds.
      // Quorum loss latches until an election restores service, so the
      // revives need a failover to clear it (docs/replication.md).
      sharded->shard(1)->quorum_log()->ReviveReplica(1);
      sharded->shard(1)->quorum_log()->ReviveReplica(2);
      sharded->shard(1)->quorum_log()->Failover();
    }
    Status s = c.Update(table, key0, 0, 1);
    if (!s.ok()) return s;
    s = c.Update(table, key1, 0, 1);
    if (!s.ok()) return s;
    if (calls.load() == 1) {
      // Age the request past max_queue_age_ns before the failing commit, so
      // the post-requeue dispatch faces the expiry check head-on.
      std::this_thread::sleep_for(std::chrono::milliseconds(60));
    }
    return Status::OK();
  });
  svc.Shutdown();

  const auto hits = CrashPoints::Global().RecordedHits();
  CrashPoints::Global().Reset();
  CrashPoints::Global().SetRecording(false);

  EXPECT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.dispatches, 2);
  EXPECT_EQ(calls.load(), 2);
  // The first dispatch entered 2PC (hit the prepare crash point) and
  // presumed abort when shard 1's quorum failed its PREPARE.
  const auto it = hits.find("2pc.pre_prepare");
  ASSERT_NE(it, hits.end());
  EXPECT_GE(it->second, 2u);  // both dispatches reached the prepare phase
  EXPECT_GE(reg.GetCounter("2pc.aborted_presumed")->value() - presumed0, 1u);

  const TransactionService::Stats st = svc.stats();
  EXPECT_EQ(st.admitted, 1u);
  EXPECT_EQ(st.requeues, 1u);
  EXPECT_EQ(st.completed, 1u);
  EXPECT_EQ(st.expired, 0u);  // expiry-after-prepare is impossible
  EXPECT_EQ(st.completed + st.expired + st.drain_aborted, st.admitted);
}

}  // namespace
}  // namespace tdp::server
