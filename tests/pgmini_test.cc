#include "pg/pgmini.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace tdp::pg {
namespace {

PgMiniConfig FastConfig(bool parallel = false) {
  PgMiniConfig cfg;
  cfg.row_work_ns = 100;
  cfg.btree.level_work_ns = 50;
  cfg.predicate_check_ns = 50;
  cfg.wal.parallel_logging = parallel;
  cfg.wal.disk.base_latency_ns = 2000;
  cfg.wal.disk.sigma = 0;
  cfg.wal.disk.flush_barrier_ns = 0;
  cfg.lock.wait_timeout_ns = MillisToNanos(2000);
  return cfg;
}

TEST(PgMiniTest, CommitPersists) {
  PgMini db(FastConfig());
  const uint32_t t = db.CreateTable("acct", 64);
  db.BulkUpsert(t, 1, storage::Row{10});
  auto conn = db.Connect();
  ASSERT_TRUE(conn->Begin().ok());
  ASSERT_TRUE(conn->Update(t, 1, 0, 5).ok());
  ASSERT_TRUE(conn->Commit().ok());
  ASSERT_TRUE(conn->Begin().ok());
  EXPECT_EQ(*conn->ReadColumn(t, 1, 0), 15);
  ASSERT_TRUE(conn->Commit().ok());
  EXPECT_EQ(db.wal().stats().commits.load(), 1u);  // read-only commit skips WAL
}

TEST(PgMiniTest, RollbackRestores) {
  PgMini db(FastConfig());
  const uint32_t t = db.CreateTable("acct", 64);
  db.BulkUpsert(t, 1, storage::Row{10});
  auto conn = db.Connect();
  ASSERT_TRUE(conn->Begin().ok());
  ASSERT_TRUE(conn->Update(t, 1, 0, 5).ok());
  ASSERT_TRUE(conn->Insert(t, 2, storage::Row{1}).ok());
  conn->Rollback();
  ASSERT_TRUE(conn->Begin().ok());
  EXPECT_EQ(*conn->ReadColumn(t, 1, 0), 10);
  EXPECT_TRUE(conn->ReadColumn(t, 2, 0).status().IsNotFound());
  ASSERT_TRUE(conn->Commit().ok());
}

TEST(PgMiniTest, ReadOnlyCommitSkipsWal) {
  PgMini db(FastConfig());
  const uint32_t t = db.CreateTable("acct", 64);
  db.BulkUpsert(t, 1, storage::Row{10});
  auto conn = db.Connect();
  ASSERT_TRUE(conn->Begin().ok());
  ASSERT_TRUE(conn->Select(t, 1).ok());
  ASSERT_TRUE(conn->Commit().ok());
  EXPECT_EQ(db.wal().stats().commits.load(), 0u);
}

TEST(PgMiniTest, WalBlocksRoundedUp) {
  PgMiniConfig cfg = FastConfig();
  cfg.wal.block_bytes = 4096;
  cfg.wal_bytes_per_write = 5000;  // > 1 block per write
  PgMini db(cfg);
  const uint32_t t = db.CreateTable("acct", 64);
  db.BulkUpsert(t, 1, storage::Row{0});
  auto conn = db.Connect();
  ASSERT_TRUE(conn->Begin().ok());
  ASSERT_TRUE(conn->Update(t, 1, 0, 1).ok());
  ASSERT_TRUE(conn->Commit().ok());
  // 5000 bytes at 4096-byte blocks = 2 blocks.
  EXPECT_EQ(db.wal().stats().blocks_written.load(), 2u);
}

TEST(PgMiniTest, NoLostUpdatesUnderConcurrency) {
  PgMini db(FastConfig());
  const uint32_t t = db.CreateTable("counter", 64);
  db.BulkUpsert(t, 1, storage::Row{0});
  constexpr int kThreads = 8, kIters = 30;
  std::atomic<int> committed{0};
  std::vector<std::thread> ts;
  for (int i = 0; i < kThreads; ++i) {
    ts.emplace_back([&] {
      auto conn = db.Connect();
      for (int j = 0; j < kIters; ++j) {
        for (;;) {
          ASSERT_TRUE(conn->Begin().ok());
          Status s = conn->Update(t, 1, 0, 1);
          if (s.ok()) s = conn->Commit();
          else conn->Rollback();
          if (s.ok()) {
            committed.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  for (auto& th : ts) th.join();
  auto conn = db.Connect();
  ASSERT_TRUE(conn->Begin().ok());
  EXPECT_EQ(*conn->ReadColumn(t, 1, 0), kThreads * kIters);
  ASSERT_TRUE(conn->Commit().ok());
}

TEST(PgMiniTest, ParallelLoggingUsesSecondLogUnderContention) {
  PgMini db(FastConfig(/*parallel=*/true));
  const uint32_t t = db.CreateTable("acct", 64);
  for (uint64_t k = 0; k < 64; ++k) db.BulkUpsert(t, k, storage::Row{0});
  constexpr int kThreads = 8, kIters = 40;
  std::vector<std::thread> ts;
  for (int i = 0; i < kThreads; ++i) {
    ts.emplace_back([&, i] {
      auto conn = db.Connect();
      for (int j = 0; j < kIters; ++j) {
        ASSERT_TRUE(conn->Begin().ok());
        Status s = conn->Update(t, (i * kIters + j) % 64, 0, 1);
        if (s.ok()) {
          ASSERT_TRUE(conn->Commit().ok());
        } else {
          conn->Rollback();
        }
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_GT(db.wal().stats().second_log_used.load(), 0u);
}

TEST(PgMiniTest, PredicateLocksResetPerTxn) {
  PgMini db(FastConfig());
  const uint32_t t = db.CreateTable("acct", 64);
  db.BulkUpsert(t, 1, storage::Row{0});
  auto conn = db.Connect();
  // Two transactions of different read footprints both commit cleanly.
  ASSERT_TRUE(conn->Begin().ok());
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(conn->Select(t, 1).ok());
  ASSERT_TRUE(conn->Commit().ok());
  ASSERT_TRUE(conn->Begin().ok());
  ASSERT_TRUE(conn->Select(t, 1).ok());
  ASSERT_TRUE(conn->Commit().ok());
}

}  // namespace
}  // namespace tdp::pg
