#include "lock/lock_manager.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/work.h"

namespace tdp::lock {
namespace {

constexpr RecordId kRec{1, 100};

LockManagerConfig Config(SchedulerPolicy policy) {
  LockManagerConfig cfg;
  cfg.policy = policy;
  cfg.wait_timeout_ns = MillisToNanos(2000);
  return cfg;
}

TEST(LockManagerTest, ImmediateGrantWhenFree) {
  LockManager lm(Config(SchedulerPolicy::kFCFS));
  TxnContext t1(1);
  EXPECT_TRUE(lm.Lock(&t1, kRec, LockMode::kX).ok());
  EXPECT_EQ(lm.stats().immediate_grants.load(), 1u);
  auto [granted, waiting] = lm.QueueDepths(kRec);
  EXPECT_EQ(granted, 1u);
  EXPECT_EQ(waiting, 0u);
  lm.ReleaseAll(&t1);
  auto [g2, w2] = lm.QueueDepths(kRec);
  EXPECT_EQ(g2, 0u);
  EXPECT_EQ(w2, 0u);
}

TEST(LockManagerTest, SharedLocksCoexist) {
  LockManager lm(Config(SchedulerPolicy::kFCFS));
  TxnContext t1(1), t2(2);
  EXPECT_TRUE(lm.Lock(&t1, kRec, LockMode::kS).ok());
  EXPECT_TRUE(lm.Lock(&t2, kRec, LockMode::kS).ok());
  auto [granted, waiting] = lm.QueueDepths(kRec);
  EXPECT_EQ(granted, 2u);
  EXPECT_EQ(waiting, 0u);
  lm.ReleaseAll(&t1);
  lm.ReleaseAll(&t2);
}

TEST(LockManagerTest, ReentrantCoveringLockIsNoop) {
  LockManager lm(Config(SchedulerPolicy::kFCFS));
  TxnContext t1(1);
  EXPECT_TRUE(lm.Lock(&t1, kRec, LockMode::kX).ok());
  EXPECT_TRUE(lm.Lock(&t1, kRec, LockMode::kS).ok());  // covered by X
  EXPECT_TRUE(lm.Lock(&t1, kRec, LockMode::kX).ok());
  auto [granted, waiting] = lm.QueueDepths(kRec);
  EXPECT_EQ(granted, 1u);
  EXPECT_EQ(waiting, 0u);
  lm.ReleaseAll(&t1);
}

TEST(LockManagerTest, ConflictingRequestWaitsUntilRelease) {
  LockManager lm(Config(SchedulerPolicy::kFCFS));
  TxnContext t1(1), t2(2);
  ASSERT_TRUE(lm.Lock(&t1, kRec, LockMode::kX).ok());

  std::atomic<bool> got{false};
  std::thread waiter([&] {
    EXPECT_TRUE(lm.Lock(&t2, kRec, LockMode::kX).ok());
    got.store(true);
    lm.ReleaseAll(&t2);
  });
  SpinFor(MillisToNanos(20));
  EXPECT_FALSE(got.load());
  lm.ReleaseAll(&t1);
  waiter.join();
  EXPECT_TRUE(got.load());
  EXPECT_GE(lm.stats().waits.load(), 1u);
}

TEST(LockManagerTest, NoBargingWhenWaitersPresent) {
  // A shared request arriving while an X request waits must queue behind
  // it (the immediate-grant rule requires an empty waiting list).
  LockManager lm(Config(SchedulerPolicy::kFCFS));
  TxnContext holder(1), writer(2), reader(3);
  ASSERT_TRUE(lm.Lock(&holder, kRec, LockMode::kS).ok());

  std::thread writer_thread([&] {
    EXPECT_TRUE(lm.Lock(&writer, kRec, LockMode::kX).ok());
    lm.ReleaseAll(&writer);
  });
  // Wait until the writer is queued.
  while (lm.QueueDepths(kRec).second == 0) SpinFor(10000);

  std::atomic<bool> reader_done{false};
  std::thread reader_thread([&] {
    EXPECT_TRUE(lm.Lock(&reader, kRec, LockMode::kS).ok());
    reader_done.store(true);
    lm.ReleaseAll(&reader);
  });
  SpinFor(MillisToNanos(20));
  EXPECT_FALSE(reader_done.load());  // reader must not barge past writer
  lm.ReleaseAll(&holder);
  writer_thread.join();
  reader_thread.join();
  EXPECT_TRUE(reader_done.load());
}

TEST(LockManagerTest, UpgradeInPlaceWhenSoleHolder) {
  LockManager lm(Config(SchedulerPolicy::kFCFS));
  TxnContext t1(1);
  ASSERT_TRUE(lm.Lock(&t1, kRec, LockMode::kS).ok());
  EXPECT_TRUE(lm.Lock(&t1, kRec, LockMode::kX).ok());
  EXPECT_EQ(lm.stats().upgrades.load(), 1u);
  auto [granted, waiting] = lm.QueueDepths(kRec);
  EXPECT_EQ(granted, 1u);
  lm.ReleaseAll(&t1);
}

TEST(LockManagerTest, UpgradeWaitsForOtherReaders) {
  LockManager lm(Config(SchedulerPolicy::kFCFS));
  TxnContext t1(1), t2(2);
  ASSERT_TRUE(lm.Lock(&t1, kRec, LockMode::kS).ok());
  ASSERT_TRUE(lm.Lock(&t2, kRec, LockMode::kS).ok());

  std::atomic<bool> upgraded{false};
  std::thread upgrader([&] {
    EXPECT_TRUE(lm.Lock(&t1, kRec, LockMode::kX).ok());
    upgraded.store(true);
    lm.ReleaseAll(&t1);
  });
  SpinFor(MillisToNanos(20));
  EXPECT_FALSE(upgraded.load());
  lm.ReleaseAll(&t2);
  upgrader.join();
  EXPECT_TRUE(upgraded.load());
}

TEST(LockManagerTest, ConversionDeadlockDetected) {
  // Two readers both upgrading to X: classic conversion deadlock; one must
  // be chosen as victim.
  LockManager lm(Config(SchedulerPolicy::kFCFS));
  TxnContext t1(1), t2(2);
  ASSERT_TRUE(lm.Lock(&t1, kRec, LockMode::kS).ok());
  ASSERT_TRUE(lm.Lock(&t2, kRec, LockMode::kS).ok());

  std::atomic<int> deadlocks{0}, grants{0};
  auto upgrade = [&](TxnContext* t) {
    Status s = lm.Lock(t, kRec, LockMode::kX);
    if (s.IsDeadlock()) {
      deadlocks.fetch_add(1);
      lm.ReleaseAll(t);
    } else if (s.ok()) {
      grants.fetch_add(1);
      lm.ReleaseAll(t);
    }
  };
  std::thread a(upgrade, &t1), b(upgrade, &t2);
  a.join();
  b.join();
  EXPECT_EQ(deadlocks.load(), 1);
  EXPECT_EQ(grants.load(), 1);
}

TEST(LockManagerTest, TwoTxnDeadlockResolved) {
  LockManager lm(Config(SchedulerPolicy::kFCFS));
  const RecordId r1{1, 1}, r2{1, 2};
  TxnContext t1(1), t2(2);
  ASSERT_TRUE(lm.Lock(&t1, r1, LockMode::kX).ok());
  ASSERT_TRUE(lm.Lock(&t2, r2, LockMode::kX).ok());

  std::atomic<int> deadlocks{0};
  std::thread a([&] {
    Status s = lm.Lock(&t1, r2, LockMode::kX);
    if (s.IsDeadlock()) deadlocks.fetch_add(1);
    lm.ReleaseAll(&t1);
  });
  std::thread b([&] {
    Status s = lm.Lock(&t2, r1, LockMode::kX);
    if (s.IsDeadlock()) deadlocks.fetch_add(1);
    lm.ReleaseAll(&t2);
  });
  a.join();
  b.join();
  EXPECT_EQ(deadlocks.load(), 1);  // exactly one victim
  EXPECT_GE(lm.stats().deadlocks.load(), 1u);
}

TEST(LockManagerTest, WaitTimeout) {
  LockManagerConfig cfg = Config(SchedulerPolicy::kFCFS);
  cfg.wait_timeout_ns = MillisToNanos(50);
  cfg.detect_deadlocks = false;  // force the timeout path
  LockManager lm(cfg);
  TxnContext t1(1), t2(2);
  ASSERT_TRUE(lm.Lock(&t1, kRec, LockMode::kX).ok());
  Status s = lm.Lock(&t2, kRec, LockMode::kX);
  EXPECT_TRUE(s.IsLockTimeout()) << s.ToString();
  EXPECT_EQ(lm.stats().timeouts.load(), 1u);
  lm.ReleaseAll(&t1);
  lm.ReleaseAll(&t2);
}

TEST(LockManagerTest, ReleaseAllFreesEveryRecord) {
  LockManager lm(Config(SchedulerPolicy::kFCFS));
  TxnContext t1(1);
  for (uint64_t k = 0; k < 20; ++k) {
    ASSERT_TRUE(lm.Lock(&t1, {1, k}, LockMode::kX).ok());
  }
  EXPECT_EQ(t1.held_records.size(), 20u);
  lm.ReleaseAll(&t1);
  EXPECT_TRUE(t1.held_records.empty());
  for (uint64_t k = 0; k < 20; ++k) {
    auto [g, w] = lm.QueueDepths({1, k});
    EXPECT_EQ(g, 0u);
    EXPECT_EQ(w, 0u);
  }
}

TEST(LockManagerTest, WaitObserverFires) {
  LockManager lm(Config(SchedulerPolicy::kFCFS));
  std::atomic<int> observed{0};
  lm.SetWaitObserver([&](const WaitObservation& obs) {
    EXPECT_TRUE(obs.granted);
    EXPECT_GE(obs.wait_ns, 0);
    observed.fetch_add(1);
  });
  TxnContext t1(1), t2(2);
  ASSERT_TRUE(lm.Lock(&t1, kRec, LockMode::kX).ok());
  std::thread waiter([&] {
    EXPECT_TRUE(lm.Lock(&t2, kRec, LockMode::kX).ok());
    lm.ReleaseAll(&t2);
  });
  SpinFor(MillisToNanos(5));
  lm.ReleaseAll(&t1);
  waiter.join();
  EXPECT_EQ(observed.load(), 1);
}

// Stress: many threads incrementing under X locks; the count must be exact
// (mutual exclusion) and nothing may deadlock permanently.
TEST(LockManagerTest, MutualExclusionStress) {
  for (SchedulerPolicy policy : {SchedulerPolicy::kFCFS,
                                 SchedulerPolicy::kVATS,
                                 SchedulerPolicy::kRS}) {
    LockManager lm(Config(policy));
    int counter = 0;
    constexpr int kThreads = 8, kIters = 200;
    std::atomic<uint64_t> next_id{1};
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t) {
      ts.emplace_back([&] {
        for (int i = 0; i < kIters; ++i) {
          const uint64_t id = next_id.fetch_add(1);
          TxnContext txn(id, id * 0x9E3779B97F4A7C15ull);
          Status s = lm.Lock(&txn, kRec, LockMode::kX);
          if (s.ok()) {
            ++counter;
            SpinFor(2000);
          }
          lm.ReleaseAll(&txn);
        }
      });
    }
    for (auto& t : ts) t.join();
    EXPECT_EQ(counter, kThreads * kIters)
        << SchedulerPolicyName(policy);
  }
}

// Timeout vs. grant-pass race: with a wait timeout in the same ballpark as
// the lock hold time, waiters constantly time out while release-triggered
// grant passes are running. Exactly one outcome may win per request — a
// waiter must never be granted-and-timed-out simultaneously. Violations
// show up as counter != grants (a "timed out" txn entered the critical
// section), a stats/outcome mismatch, or requests left in the queue.
TEST(LockManagerTest, TimeoutVsGrantPassExclusive) {
  for (SchedulerPolicy policy :
       {SchedulerPolicy::kVATS, SchedulerPolicy::kFCFS}) {
    LockManagerConfig cfg = Config(policy);
    cfg.wait_timeout_ns = MillisToNanos(1);
    LockManager lm(cfg);
    int counter = 0;
    constexpr int kThreads = 8, kIters = 150;
    std::atomic<uint64_t> next_id{1};
    std::atomic<int> grants{0}, timeouts{0}, deadlocks{0};
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t) {
      ts.emplace_back([&] {
        for (int i = 0; i < kIters; ++i) {
          const uint64_t id = next_id.fetch_add(1);
          TxnContext txn(id, id * 0x9E3779B97F4A7C15ull);
          Status s = lm.Lock(&txn, kRec, LockMode::kX);
          if (s.ok()) {
            ++counter;
            // Hold for a large fraction of the timeout so grants to the
            // next waiter land right around other waiters' deadlines.
            SpinFor(300000);
            grants.fetch_add(1);
          } else if (s.IsLockTimeout()) {
            timeouts.fetch_add(1);
          } else if (s.IsDeadlock()) {
            deadlocks.fetch_add(1);
          } else {
            ADD_FAILURE() << "unexpected status " << s.ToString();
          }
          lm.ReleaseAll(&txn);
        }
      });
    }
    for (auto& t : ts) t.join();
    const char* name = SchedulerPolicyName(policy);
    // Mutual exclusion held for exactly the granted requests.
    EXPECT_EQ(counter, grants.load()) << name;
    // Every request got exactly one outcome.
    EXPECT_EQ(grants.load() + timeouts.load() + deadlocks.load(),
              kThreads * kIters)
        << name;
    // The manager's own books agree with what the callers observed.
    EXPECT_EQ(lm.stats().timeouts.load(),
              static_cast<uint64_t>(timeouts.load()))
        << name;
    // The race must actually have been exercised from both sides.
    EXPECT_GT(grants.load(), 0) << name;
    EXPECT_GT(timeouts.load(), 0) << name;
    // No request may linger granted or waiting after ReleaseAll.
    auto [g, w] = lm.QueueDepths(kRec);
    EXPECT_EQ(g, 0u) << name;
    EXPECT_EQ(w, 0u) << name;
  }
}

}  // namespace
}  // namespace tdp::lock
