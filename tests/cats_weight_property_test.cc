// CATS weight conservation (the blocked_weight_ ledger audit): every wait
// edge a waiter registers must be deducted again on EVERY exit path —
// grant, timeout, deadlock victim, and release — so the scheduler's weights
// match the live wait-for graph exactly and drift to zero at quiesce. A
// leaked entry would permanently bias CATS toward the leaking transaction's
// blockers; a negative one would starve them.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/work.h"
#include "lock/lock_manager.h"

namespace tdp::lock {
namespace {

constexpr RecordId kHot{1, 1};

LockManagerConfig CatsConfig(int64_t timeout_ns = MillisToNanos(5000)) {
  LockManagerConfig cfg;
  cfg.policy = SchedulerPolicy::kCATS;
  cfg.wait_timeout_ns = timeout_ns;
  return cfg;
}

/// Both ledgers must agree and be empty once no transaction is waiting.
void ExpectQuiesced(const LockManager& lm) {
  EXPECT_EQ(lm.TotalBlockedWeight(), 0);
  EXPECT_EQ(lm.NumWaitEdges(), 0u);
}

TEST(CatsWeightPropertyTest, WeightEqualsWaitEdgesAtSteadyState) {
  LockManager lm(CatsConfig());
  TxnContext holder(1);
  ASSERT_TRUE(lm.Lock(&holder, kHot, LockMode::kX).ok());

  // Two parked waiters: w1 -> holder, w2 -> holder, w2 -> w1 (ahead in the
  // queue) = 3 edges, and the total blocked weight is the same 3 (holder
  // carries 2, w1 carries 1).
  TxnContext w1(2), w2(3);
  std::thread t1([&] {
    EXPECT_TRUE(lm.Lock(&w1, kHot, LockMode::kX).ok());
    lm.ReleaseAll(&w1);
  });
  while (lm.QueueDepths(kHot).second != 1) SpinFor(5000);
  std::thread t2([&] {
    EXPECT_TRUE(lm.Lock(&w2, kHot, LockMode::kX).ok());
    lm.ReleaseAll(&w2);
  });
  while (lm.QueueDepths(kHot).second != 2) SpinFor(5000);

  EXPECT_EQ(lm.TotalBlockedWeight(), 3);
  EXPECT_EQ(lm.NumWaitEdges(), 3u);
  EXPECT_EQ(static_cast<size_t>(lm.TotalBlockedWeight()), lm.NumWaitEdges());

  lm.ReleaseAll(&holder);
  t1.join();
  t2.join();
  ExpectQuiesced(lm);
}

TEST(CatsWeightPropertyTest, TimeoutExitReturnsEveryRegisteredEdge) {
  LockManager lm(CatsConfig(MillisToNanos(20)));
  TxnContext holder(1);
  ASSERT_TRUE(lm.Lock(&holder, kHot, LockMode::kX).ok());

  constexpr int kWaiters = 4;
  std::vector<std::thread> ts;
  std::atomic<int> timeouts{0};
  for (int i = 0; i < kWaiters; ++i) {
    ts.emplace_back([&, i] {
      TxnContext w(static_cast<uint64_t>(i + 2));
      if (!lm.Lock(&w, kHot, LockMode::kX).ok()) timeouts.fetch_add(1);
      lm.ReleaseAll(&w);
    });
  }
  for (auto& t : ts) t.join();
  // The holder never released: every waiter left through the timeout path.
  EXPECT_EQ(timeouts.load(), kWaiters);
  ExpectQuiesced(lm);  // ...and every edge they registered came back
  EXPECT_EQ(lm.BlockedWeight(holder.id), 0);

  lm.ReleaseAll(&holder);
  ExpectQuiesced(lm);
}

TEST(CatsWeightPropertyTest, DeadlockVictimExitReturnsEveryRegisteredEdge) {
  LockManager lm(CatsConfig());
  const RecordId r1{2, 1}, r2{2, 2};
  TxnContext t1(1), t2(2);
  ASSERT_TRUE(lm.Lock(&t1, r1, LockMode::kX).ok());
  ASSERT_TRUE(lm.Lock(&t2, r2, LockMode::kX).ok());
  std::atomic<int> deadlocks{0};
  std::thread a([&] {
    if (lm.Lock(&t1, r2, LockMode::kX).IsDeadlock()) deadlocks.fetch_add(1);
    lm.ReleaseAll(&t1);
  });
  std::thread b([&] {
    if (lm.Lock(&t2, r1, LockMode::kX).IsDeadlock()) deadlocks.fetch_add(1);
    lm.ReleaseAll(&t2);
  });
  a.join();
  b.join();
  EXPECT_EQ(deadlocks.load(), 1);  // exactly one victim broke the cycle
  ExpectQuiesced(lm);
}

// The property proper: randomized multi-record churn mixing grants,
// upgrades, timeouts, and deadlock victims. Whatever path each waiter took
// out of the queue, the weight and edge ledgers end exactly empty.
TEST(CatsWeightPropertyTest, RandomChurnConservesWeightAtQuiesce) {
  LockManager lm(CatsConfig(MillisToNanos(10)));
  constexpr int kThreads = 8;
  constexpr int kIters = 150;
  constexpr uint64_t kRecords = 6;
  std::atomic<uint64_t> next_id{1};
  std::atomic<int> granted{0}, denied{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(t) * 7919 + 17);
      for (int i = 0; i < kIters; ++i) {
        const uint64_t id = next_id.fetch_add(1);
        TxnContext txn(id, static_cast<int64_t>(id) * 31);
        // 2 records in random order with lock-order inversions: plenty of
        // deadlocks; the short wait timeout adds timeout exits.
        const uint64_t a = rng.Uniform(kRecords);
        const uint64_t b = (a + 1 + rng.Uniform(kRecords - 1)) % kRecords;
        const LockMode first =
            rng.Bernoulli(0.3) ? LockMode::kS : LockMode::kX;
        bool ok = lm.Lock(&txn, RecordId{1, a + 1}, first).ok();
        if (ok && first == LockMode::kS && rng.Bernoulli(0.5)) {
          // Upgrade pressure: S -> X on the same record.
          ok = lm.Lock(&txn, RecordId{1, a + 1}, LockMode::kX).ok();
        }
        if (ok) {
          ok = lm.Lock(&txn, RecordId{1, b + 1}, LockMode::kX).ok();
        }
        if (ok) {
          granted.fetch_add(1);
          SpinFor(1000);
        } else {
          denied.fetch_add(1);
        }
        lm.ReleaseAll(&txn);
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_GT(granted.load(), 0);
  ExpectQuiesced(lm);
  // Empty queues were erased on the way out: no record entry lingers.
  for (uint64_t r = 0; r < kRecords; ++r) {
    const auto depths = lm.QueueDepths(RecordId{1, r + 1});
    EXPECT_EQ(depths.first, 0u);
    EXPECT_EQ(depths.second, 0u);
  }
}

}  // namespace
}  // namespace tdp::lock
