// Lazy LRU Update (Section 6.1) behaviour.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "buffer/buffer_pool.h"
#include "common/work.h"

namespace tdp::buffer {
namespace {

PageId P(uint64_t n) { return PageId{0, n}; }

BufferPoolConfig LluPool(size_t pages) {
  BufferPoolConfig cfg;
  cfg.capacity_pages = pages;
  cfg.lazy_lru = true;
  cfg.llu_spin_budget_ns = 10000;  // the paper's 0.01 ms
  return cfg;
}

TEST(LluTest, BehavesLikeLruWhenUncontended) {
  BufferPool pool(LluPool(16));
  for (uint64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(pool.Fetch(P(i)).ok());
    pool.Unpin(P(i));
  }
  uint64_t old_page = UINT64_MAX;
  for (uint64_t i = 0; i < 8; ++i) {
    if (pool.InOldSublist(P(i))) {
      old_page = i;
      break;
    }
  }
  ASSERT_NE(old_page, UINT64_MAX);
  ASSERT_TRUE(pool.Fetch(P(old_page)).ok());
  pool.Unpin(P(old_page));
  // Uncontended: the spin lock is free, so the reorder happens eagerly.
  EXPECT_FALSE(pool.InOldSublist(P(old_page)));
  EXPECT_EQ(pool.stats().llu_deferred.load(), 0u);
}

TEST(LluTest, CapacityAndCountsStillCorrect) {
  BufferPool pool(LluPool(8));
  for (uint64_t i = 0; i < 64; ++i) {
    ASSERT_TRUE(pool.Fetch(P(i)).ok());
    pool.Unpin(P(i));
  }
  EXPECT_LE(pool.resident_pages(), 8u);
  auto [young, old] = pool.SublistLengths();
  EXPECT_EQ(young + old, pool.resident_pages());
}

TEST(LluTest, ConcurrentStressMaintainsInvariants) {
  BufferPool pool(LluPool(32));
  constexpr int kThreads = 8, kIters = 3000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const PageId id = P((t * 31 + i * 7) % 96);
        ASSERT_TRUE(pool.Fetch(id).ok());
        pool.Unpin(id);
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_LE(pool.resident_pages(), 32u + kThreads);
  auto [young, old] = pool.SublistLengths();
  EXPECT_EQ(young + old, pool.resident_pages());
  // Every deferred reorder was either drained or dropped, never lost in
  // a way that corrupts the lists (the invariant above).
  const auto& st = pool.stats();
  EXPECT_GE(st.llu_drained.load() + st.llu_dropped.load(), 0u);
}

// Force the deferral path: hold the LRU lock (via a long eviction storm from
// another thread is unreliable) — instead use a tiny spin budget and heavy
// make-young contention, then verify deferred > 0 and drained follows.
TEST(LluTest, DeferralHappensUnderContention) {
  BufferPoolConfig cfg = LluPool(256);
  cfg.llu_spin_budget_ns = 1;         // effectively "never wait"
  cfg.lru_critical_work_ns = 20000;   // long holds: collisions guaranteed
  BufferPool pool(cfg);
  // Preload and unpin everything; most pages sit in the old list initially.
  for (uint64_t i = 0; i < 256; ++i) {
    ASSERT_TRUE(pool.Fetch(P(i)).ok());
    pool.Unpin(P(i));
  }
  // Enough iterations that the threads genuinely overlap: with a ~1 ns spin
  // budget and 8 threads hammering make-young, deferrals are abundant.
  constexpr int kThreads = 8, kIters = 50000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      Rng rng(t + 1);
      for (int i = 0; i < kIters; ++i) {
        const PageId id = P(rng.Uniform(256));
        ASSERT_TRUE(pool.Fetch(id).ok());
        pool.Unpin(id);
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_GT(pool.stats().llu_deferred.load(), 0u);
  auto [young, old] = pool.SublistLengths();
  EXPECT_EQ(young + old, pool.resident_pages());
}

TEST(LluTest, BacklogCapDropsOldestInsteadOfGrowing) {
  BufferPoolConfig cfg = LluPool(64);
  cfg.llu_spin_budget_ns = 1;
  cfg.llu_backlog_max = 4;
  BufferPool pool(cfg);
  for (uint64_t i = 0; i < 64; ++i) {
    ASSERT_TRUE(pool.Fetch(P(i)).ok());
    pool.Unpin(P(i));
  }
  constexpr int kThreads = 8;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      Rng rng(t + 100);
      for (int i = 0; i < 4000; ++i) {
        const PageId id = P(rng.Uniform(64));
        ASSERT_TRUE(pool.Fetch(id).ok());
        pool.Unpin(id);
      }
    });
  }
  for (auto& t : ts) t.join();
  // With budget ~0 and heavy contention some backlogs overflowed; the pool
  // must survive and account for the drops.
  SUCCEED();  // invariant checks:
  auto [young, old] = pool.SublistLengths();
  EXPECT_EQ(young + old, pool.resident_pages());
}

}  // namespace
}  // namespace tdp::buffer
