// Correctness of the tdp::metrics registry itself: exact concurrent sums,
// torn-safe snapshots while writers run, and the disarmed registry's
// no-allocation guarantee (docs/metrics.md).
#include "common/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/histogram.h"

namespace tdp::metrics {
namespace {

#ifndef TDP_METRICS_DISABLED

TEST(MetricsRegistryTest, InterningReturnsStableHandles) {
  Registry r;
  Counter* a = r.GetCounter("test.a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a, r.GetCounter("test.a"));
  EXPECT_NE(a, r.GetCounter("test.b"));
  // The same dotted name may exist as every kind; they are distinct metrics.
  EXPECT_NE(r.GetGauge("test.a"), nullptr);
  EXPECT_NE(r.GetHistogram("test.a"), nullptr);
  EXPECT_EQ(r.size(), 4u);
}

TEST(MetricsRegistryTest, ConcurrentCounterIncrementsSumExactly) {
  Registry r;
  Counter* c = r.GetCounter("test.sum");
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 200000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c, t] {
      // Mix unit and bulk increments so the test covers both Add forms.
      for (uint64_t i = 0; i < kPerThread; ++i) Inc(c, (t % 2 == 0) ? 1 : 3);
    });
  }
  for (auto& th : threads) th.join();
  const uint64_t ones = (kThreads / 2) * kPerThread;
  const uint64_t threes = (kThreads - kThreads / 2) * kPerThread * 3;
  EXPECT_EQ(c->value(), ones + threes);
  EXPECT_EQ(r.TakeSnapshot().counter("test.sum"), ones + threes);
}

TEST(MetricsRegistryTest, ConcurrentGaugeBalancedUpdatesReturnToZero) {
  Registry r;
  Gauge* g = r.GetGauge("test.depth");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([g] {
      for (int i = 0; i < kPerThread; ++i) {
        GaugeAdd(g, 2);
        GaugeAdd(g, -2);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(g->value(), 0);
  EXPECT_GE(g->max_seen(), 2);
  EXPECT_LE(g->max_seen(), 2 * kThreads);
}

TEST(MetricsRegistryTest, ConcurrentHistogramObservationsCountExactly) {
  Registry r;
  Histogram* h = r.GetHistogram("test.lat");
  constexpr int kThreads = 6;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([h, t] {
      for (uint64_t i = 0; i < kPerThread; ++i)
        Observe(h, 1000 + 100 * t);
    });
  }
  for (auto& th : threads) th.join();
  const HistogramSnapshot snap = r.TakeSnapshot().histogram("test.lat");
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  uint64_t bucket_total = 0;
  for (uint64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, kThreads * kPerThread);
}

TEST(MetricsRegistryTest, SnapshotWhileWritingIsTornSafe) {
  Registry r;
  Counter* c = r.GetCounter("test.c");
  Gauge* g = r.GetGauge("test.g");
  Histogram* h = r.GetHistogram("test.h");
  constexpr int64_t kValue = 5000;  // constant, so every percentile is known
  Histogram reference;
  reference.Add(kValue);
  const int64_t expected_p50 = reference.Percentile(50);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        Inc(c);
        GaugeAdd(g, 1);
        Observe(h, kValue);
        GaugeAdd(g, -1);
      }
    });
  }
  uint64_t prev_count = 0;
  uint64_t prev_hist = 0;
  for (int i = 0; i < 2000; ++i) {
    const MetricsSnapshot snap = r.TakeSnapshot();
    // Counters are monotone across snapshots; no out-of-thin-air values.
    const uint64_t now = snap.counter("test.c");
    ASSERT_GE(now, prev_count);
    prev_count = now;
    const HistogramSnapshot hs = snap.histogram("test.h");
    ASSERT_GE(hs.count, prev_hist);
    prev_hist = hs.count;
    // Every observation is kValue, so any torn-safe snapshot keeps the mean
    // in [0, max] and the median inside kValue's own bucket.
    ASSERT_GE(hs.mean(), 0.0);
    if (hs.count > 0) {
      ASSERT_LE(hs.mean(), static_cast<double>(hs.max));
      ASSERT_EQ(hs.Percentile(50), expected_p50);
    }
    const MetricsSnapshot::GaugeValue gv = snap.gauge("test.g");
    ASSERT_GE(gv.value, 0);
    ASSERT_LE(gv.value, 4);
    ASSERT_LE(gv.max, 4);
  }
  stop.store(true);
  for (auto& th : writers) th.join();
}

TEST(MetricsRegistryTest, DeltaSubtractsExactly) {
  Registry r;
  Counter* c = r.GetCounter("test.c");
  Gauge* g = r.GetGauge("test.g");
  Histogram* h = r.GetHistogram("test.h");
  c->Add(10);
  g->Add(3);
  h->Add(100);
  h->Add(200);
  const MetricsSnapshot before = r.TakeSnapshot();
  c->Add(7);
  g->Add(2);
  h->Add(300);
  const MetricsSnapshot after = r.TakeSnapshot();
  const MetricsSnapshot delta = MetricsSnapshot::Delta(before, after);
  EXPECT_EQ(delta.counter("test.c"), 7u);
  // Gauges are levels, not totals: the delta keeps `after`'s state.
  EXPECT_EQ(delta.gauge("test.g").value, 5);
  EXPECT_EQ(delta.histogram("test.h").count, 1u);
}

TEST(MetricsRegistryTest, DisarmedRegistryInternsNothing) {
  Registry r;
  Counter* armed = r.GetCounter("test.before");
  ASSERT_NE(armed, nullptr);
  r.SetArmed(false);
  // Disarmed acquisition returns null and allocates no registry entry.
  EXPECT_EQ(r.GetCounter("test.skipped"), nullptr);
  EXPECT_EQ(r.GetGauge("test.skipped"), nullptr);
  EXPECT_EQ(r.GetHistogram("test.skipped"), nullptr);
  EXPECT_EQ(r.size(), 1u);
  // The helpers tolerate null handles: these must be no-ops, not crashes.
  Inc(nullptr);
  GaugeAdd(nullptr, 1);
  Observe(nullptr, 1);
  // Handles acquired while armed keep working after disarm (arming is
  // sampled at acquisition time only).
  Inc(armed, 5);
  EXPECT_EQ(armed->value(), 5u);
  r.SetArmed(true);
  EXPECT_NE(r.GetCounter("test.after"), nullptr);
  EXPECT_EQ(r.size(), 2u);
}

TEST(MetricsRegistryTest, ResetAllZeroesButKeepsHandles) {
  Registry r;
  Counter* c = r.GetCounter("test.c");
  Gauge* g = r.GetGauge("test.g");
  Histogram* h = r.GetHistogram("test.h");
  c->Add(9);
  g->Add(4);
  h->Add(123);
  r.ResetAll();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(g->value(), 0);
  EXPECT_EQ(g->max_seen(), 0);
  EXPECT_EQ(r.TakeSnapshot().histogram("test.h").count, 0u);
  c->Add(1);  // the old handle still feeds the same metric
  EXPECT_EQ(r.TakeSnapshot().counter("test.c"), 1u);
}

#else  // TDP_METRICS_DISABLED

TEST(MetricsRegistryTest, CompiledOutRegistryAllocatesNothing) {
  Registry r;
  EXPECT_EQ(r.GetCounter("test.a"), nullptr);
  EXPECT_EQ(r.GetGauge("test.a"), nullptr);
  EXPECT_EQ(r.GetHistogram("test.a"), nullptr);
  EXPECT_EQ(r.size(), 0u);
  Inc(nullptr);
  GaugeAdd(nullptr, 1);
  Observe(nullptr, 1);
}

#endif

}  // namespace
}  // namespace tdp::metrics
