#include "lock/deadlock.h"

#include <gtest/gtest.h>

namespace tdp::lock {
namespace {

using BirthMap = std::unordered_map<uint64_t, int64_t>;

TEST(DeadlockDetectorTest, NoCycleNoVictim) {
  DeadlockDetector d;
  BirthMap births = {{1, 10}, {2, 20}};
  EXPECT_EQ(d.SetWaits(1, {2}, births), 0u);
  EXPECT_EQ(d.num_waiters(), 1u);
}

TEST(DeadlockDetectorTest, TwoCycleChoosesYoungest) {
  DeadlockDetector d;
  BirthMap births = {{1, 10}, {2, 20}};  // 2 is younger (born later)
  EXPECT_EQ(d.SetWaits(1, {2}, births), 0u);
  EXPECT_EQ(d.SetWaits(2, {1}, births), 2u);
}

TEST(DeadlockDetectorTest, TwoCycleVictimIsOtherWhenRequesterOlder) {
  DeadlockDetector d;
  BirthMap births = {{1, 30}, {2, 20}};  // 1 is younger
  EXPECT_EQ(d.SetWaits(1, {2}, births), 0u);
  EXPECT_EQ(d.SetWaits(2, {1}, births), 1u);
}

TEST(DeadlockDetectorTest, ThreeCycle) {
  DeadlockDetector d;
  BirthMap births = {{1, 10}, {2, 20}, {3, 30}};
  EXPECT_EQ(d.SetWaits(1, {2}, births), 0u);
  EXPECT_EQ(d.SetWaits(2, {3}, births), 0u);
  EXPECT_EQ(d.SetWaits(3, {1}, births), 3u);  // youngest in the cycle
}

TEST(DeadlockDetectorTest, SelfEdgeIgnored) {
  DeadlockDetector d;
  BirthMap births = {{1, 10}};
  EXPECT_EQ(d.SetWaits(1, {1}, births), 0u);
  EXPECT_EQ(d.num_waiters(), 0u);  // empty edges drop the waiter
}

TEST(DeadlockDetectorTest, EmptyBlockersClearsWaiter) {
  DeadlockDetector d;
  BirthMap births = {{1, 10}, {2, 20}};
  EXPECT_EQ(d.SetWaits(1, {2}, births), 0u);
  EXPECT_EQ(d.SetWaits(1, {}, births), 0u);
  EXPECT_EQ(d.num_waiters(), 0u);
}

TEST(DeadlockDetectorTest, RemoveBreaksCycle) {
  DeadlockDetector d;
  BirthMap births = {{1, 10}, {2, 20}};
  EXPECT_EQ(d.SetWaits(1, {2}, births), 0u);
  d.Remove(1);
  // 2 waiting on 1 no longer closes a cycle.
  EXPECT_EQ(d.SetWaits(2, {1}, births), 0u);
}

TEST(DeadlockDetectorTest, SetWaitsReplacesEdges) {
  DeadlockDetector d;
  BirthMap births = {{1, 10}, {2, 20}, {3, 5}};
  EXPECT_EQ(d.SetWaits(1, {2}, births), 0u);
  // Re-registering 1 to wait on 3 must drop the 1->2 edge.
  EXPECT_EQ(d.SetWaits(1, {3}, births), 0u);
  EXPECT_EQ(d.SetWaits(2, {1}, births), 0u);  // 2->1->3: no cycle
}

TEST(DeadlockDetectorTest, DiamondNoCycle) {
  DeadlockDetector d;
  BirthMap births = {{1, 1}, {2, 2}, {3, 3}, {4, 4}};
  EXPECT_EQ(d.SetWaits(1, {2, 3}, births), 0u);
  EXPECT_EQ(d.SetWaits(2, {4}, births), 0u);
  EXPECT_EQ(d.SetWaits(3, {4}, births), 0u);
  EXPECT_EQ(d.num_waiters(), 3u);
}

TEST(DeadlockDetectorTest, CycleNotThroughRequesterStillFound) {
  DeadlockDetector d;
  BirthMap births = {{1, 1}, {2, 2}, {3, 3}};
  EXPECT_EQ(d.SetWaits(2, {3}, births), 0u);
  EXPECT_EQ(d.SetWaits(3, {2}, births), 3u);  // 2<->3 cycle, victim 3
}

TEST(DeadlockDetectorTest, MissingBirthTreatedAsOldest) {
  DeadlockDetector d;
  BirthMap births = {{2, 50}};  // 1 has no birth entry
  EXPECT_EQ(d.SetWaits(1, {2}, births), 0u);
  EXPECT_EQ(d.SetWaits(2, {1}, births), 2u);  // 2 younger than unknown 1
}

}  // namespace
}  // namespace tdp::lock
