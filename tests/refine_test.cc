// Iterative-refinement driver (Section 3.1) on a synthetic call tree with a
// known deep culprit.
#include "tprofiler/refine.h"

#include <gtest/gtest.h>

#include <atomic>

#include "common/work.h"

namespace tdp::tprof {
namespace {

std::atomic<int> g_txn_counter{0};

// rf_culprit is the deep source of variance: alternating fast/slow.
void Culprit() {
  TPROF_SCOPE("rf_culprit");
  SpinFor(g_txn_counter.load() % 2 == 0 ? 20000 : 1500000);
}

void Stable() {
  TPROF_SCOPE("rf_stable");
  SpinFor(50000);
}

void Branch() {
  TPROF_SCOPE("rf_branch");
  Culprit();
  Stable();
}

void RfRoot() {
  TPROF_SCOPE("rf_root");
  Branch();
  Stable();
}

void RunWorkload() {
  for (int i = 0; i < 40; ++i) {
    g_txn_counter.fetch_add(1);
    TxnScope txn;
    RfRoot();
  }
}

TEST(RefineTest, FindsDeepCulprit) {
  RefineConfig cfg;
  cfg.top_k = 3;
  cfg.max_iterations = 8;
  RefinementDriver driver(cfg);
  RefineResult result = driver.Run({"rf_root"}, RunWorkload);

  ASSERT_NE(result.analysis, nullptr);
  EXPECT_GE(result.runs_used, 2);  // root alone is not informative
  // The culprit was eventually instrumented...
  bool culprit_instrumented = false;
  for (const std::string& name : result.instrumented) {
    if (name == "rf_culprit") culprit_instrumented = true;
  }
  EXPECT_TRUE(culprit_instrumented);
  // ...and carries the dominant share of variance in the final profile.
  const auto shares = result.analysis->FunctionShares();
  ASSERT_FALSE(shares.empty());
  double culprit_pct = 0;
  for (const auto& s : shares) {
    if (s.name == "rf_culprit") culprit_pct = s.pct_of_total;
  }
  EXPECT_GT(culprit_pct, 30.0);
}

TEST(RefineTest, StopsWhenNothingLeftToExpand) {
  RefineConfig cfg;
  cfg.top_k = 5;
  cfg.max_iterations = 20;
  RefinementDriver driver(cfg);
  RefineResult result = driver.Run({"rf_root"}, RunWorkload);
  // The tree has depth 3; refinement must converge well below the budget.
  EXPECT_LE(result.runs_used, 5);
}

TEST(RefineTest, NaiveRunsCountNonLeaves) {
  // Ensure the graph is discovered.
  RefineConfig cfg;
  RefinementDriver driver(cfg);
  driver.Run({"rf_root"}, RunWorkload);
  // Non-leaves in rf graph: rf_root, rf_branch, rf_culprit? culprit and
  // stable are leaves. So exactly 2.
  EXPECT_EQ(RefinementDriver::NaiveRunsFor({"rf_root"}), 2u);
}

TEST(RefineTest, StaticCallTreeSizeCountsPaths) {
  RefineConfig cfg;
  RefinementDriver driver(cfg);
  driver.Run({"rf_root"}, RunWorkload);
  // Paths: root, root/branch, root/branch/culprit, root/branch/stable,
  // root/stable = 5 nodes.
  EXPECT_EQ(RefinementDriver::StaticCallTreeSize({"rf_root"}), 5u);
}

TEST(RefineTest, UnknownRootYieldsSingleRun) {
  RefineConfig cfg;
  RefinementDriver driver(cfg);
  RefineResult result = driver.Run({"rf_nonexistent_root"}, [] {});
  EXPECT_EQ(result.runs_used, 1);
  EXPECT_EQ(RefinementDriver::NaiveRunsFor({"rf_nonexistent_root"}), 0u);
}

}  // namespace
}  // namespace tdp::tprof
