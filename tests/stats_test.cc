#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace tdp {
namespace {

TEST(LatencySampleTest, EmptySummary) {
  LatencySample s;
  const LatencySummary sum = s.Summarize();
  EXPECT_EQ(sum.count, 0u);
  EXPECT_EQ(sum.mean_ns, 0);
  EXPECT_EQ(s.LpNorm(2), 0);
}

TEST(LatencySampleTest, BasicMoments) {
  LatencySample s;
  for (int64_t v : {2, 4, 4, 4, 5, 5, 7, 9}) s.Add(v);
  const LatencySummary sum = s.Summarize();
  EXPECT_EQ(sum.count, 8u);
  EXPECT_DOUBLE_EQ(sum.mean_ns, 5.0);
  EXPECT_DOUBLE_EQ(sum.variance_ns2, 4.0);  // classic example
  EXPECT_DOUBLE_EQ(sum.stddev_ns, 2.0);
  EXPECT_DOUBLE_EQ(sum.cov, 0.4);
  EXPECT_EQ(sum.min_ns, 2);
  EXPECT_EQ(sum.max_ns, 9);
}

TEST(LatencySampleTest, PercentilesSorted) {
  LatencySample s;
  for (int i = 100; i >= 1; --i) s.Add(i);
  const LatencySummary sum = s.Summarize();
  EXPECT_NEAR(sum.p50_ns, 50.5, 0.6);
  EXPECT_NEAR(sum.p99_ns, 99.01, 0.1);
  EXPECT_EQ(sum.max_ns, 100);
}

TEST(LatencySampleTest, MergeEqualsUnion) {
  LatencySample a, b;
  for (int i = 0; i < 50; ++i) a.Add(i);
  for (int i = 50; i < 100; ++i) b.Add(i);
  a.MergeFrom(b);
  EXPECT_EQ(a.count(), 100u);
  EXPECT_DOUBLE_EQ(a.Summarize().mean_ns, 49.5);
}

TEST(LatencySampleTest, LpNormP2) {
  LatencySample s;
  s.Add(3);
  s.Add(4);
  EXPECT_NEAR(s.LpNorm(2), 5.0, 1e-9);
}

TEST(LatencySampleTest, LpNormP1IsSum) {
  LatencySample s;
  s.Add(1);
  s.Add(2);
  s.Add(3);
  EXPECT_NEAR(s.LpNorm(1), 6.0, 1e-9);
}

TEST(LatencySampleTest, LpNormLargePApproachesMax) {
  LatencySample s;
  s.Add(10);
  s.Add(1000);
  EXPECT_NEAR(s.LpNorm(64), 1000.0, 1.0);
}

TEST(LatencySampleTest, NormalizedLpInvariantToDuplication) {
  LatencySample a, b;
  for (int i = 1; i <= 10; ++i) a.Add(i);
  for (int r = 0; r < 4; ++r) {
    for (int i = 1; i <= 10; ++i) b.Add(i);
  }
  EXPECT_NEAR(a.NormalizedLpNorm(2), b.NormalizedLpNorm(2), 1e-9);
}

TEST(OnlineStatsTest, MatchesBatch) {
  OnlineStats o;
  std::vector<double> xs = {1.5, 2.5, 9, -4, 7, 0.25};
  for (double x : xs) o.Add(x);
  EXPECT_NEAR(o.mean(), Mean(xs), 1e-12);
  EXPECT_NEAR(o.variance(), Variance(xs), 1e-12);
}

TEST(OnlineStatsTest, MergeMatchesCombined) {
  OnlineStats a, b, all;
  for (int i = 0; i < 10; ++i) {
    a.Add(i * 1.5);
    all.Add(i * 1.5);
  }
  for (int i = 0; i < 7; ++i) {
    b.Add(100 - i);
    all.Add(100 - i);
  }
  a.MergeFrom(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(CovarianceTest, KnownValues) {
  std::vector<double> x = {1, 2, 3, 4};
  std::vector<double> y = {2, 4, 6, 8};
  EXPECT_NEAR(Covariance(x, y), 2.5, 1e-12);  // Var(x) = 1.25, scale 2
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
}

TEST(CovarianceTest, AntiCorrelated) {
  std::vector<double> x = {1, 2, 3, 4};
  std::vector<double> y = {8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(x, y), -1.0, 1e-12);
}

TEST(CovarianceTest, ZeroVarianceGivesZeroCorrelation) {
  std::vector<double> x = {5, 5, 5};
  std::vector<double> y = {1, 2, 3};
  EXPECT_EQ(PearsonCorrelation(x, y), 0.0);
}

TEST(CovarianceTest, MismatchedLengthsGiveZero) {
  std::vector<double> x = {1, 2};
  std::vector<double> y = {1, 2, 3};
  EXPECT_EQ(Covariance(x, y), 0.0);
}

// The decomposition TProfiler relies on: Var(X+Y) = Var X + Var Y + 2Cov.
TEST(CovarianceTest, VarianceOfSumIdentity) {
  std::vector<double> x = {1, 7, 3, 9, 2};
  std::vector<double> y = {4, 1, 8, 2, 6};
  std::vector<double> sum(5);
  for (int i = 0; i < 5; ++i) sum[i] = x[i] + y[i];
  EXPECT_NEAR(Variance(sum),
              Variance(x) + Variance(y) + 2 * Covariance(x, y), 1e-9);
}

TEST(PercentileTest, InterpolatesBetweenPoints) {
  std::vector<int64_t> v = {10, 20};
  EXPECT_NEAR(PercentileSorted(v, 50), 15.0, 1e-9);
  EXPECT_NEAR(PercentileSorted(v, 0), 10.0, 1e-9);
  EXPECT_NEAR(PercentileSorted(v, 100), 20.0, 1e-9);
}

TEST(SummarizeVectorTest, MatchesSample) {
  std::vector<int64_t> v = {5, 1, 9, 3};
  const LatencySummary s = SummarizeVector(v);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean_ns, 4.5);
  EXPECT_NEAR(LpNormOf(v, 1), 18.0, 1e-9);
}

}  // namespace
}  // namespace tdp
