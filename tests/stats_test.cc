#include "common/stats.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/histogram.h"
#include "common/random.h"

namespace tdp {
namespace {

TEST(LatencySampleTest, EmptySummary) {
  LatencySample s;
  const LatencySummary sum = s.Summarize();
  EXPECT_EQ(sum.count, 0u);
  EXPECT_EQ(sum.mean_ns, 0);
  EXPECT_EQ(s.LpNorm(2), 0);
}

TEST(LatencySampleTest, BasicMoments) {
  LatencySample s;
  for (int64_t v : {2, 4, 4, 4, 5, 5, 7, 9}) s.Add(v);
  const LatencySummary sum = s.Summarize();
  EXPECT_EQ(sum.count, 8u);
  EXPECT_DOUBLE_EQ(sum.mean_ns, 5.0);
  EXPECT_DOUBLE_EQ(sum.variance_ns2, 4.0);  // classic example
  EXPECT_DOUBLE_EQ(sum.stddev_ns, 2.0);
  EXPECT_DOUBLE_EQ(sum.cov, 0.4);
  EXPECT_EQ(sum.min_ns, 2);
  EXPECT_EQ(sum.max_ns, 9);
}

TEST(LatencySampleTest, PercentilesSorted) {
  LatencySample s;
  for (int i = 100; i >= 1; --i) s.Add(i);
  const LatencySummary sum = s.Summarize();
  EXPECT_NEAR(sum.p50_ns, 50.5, 0.6);
  EXPECT_NEAR(sum.p99_ns, 99.01, 0.1);
  EXPECT_EQ(sum.max_ns, 100);
}

TEST(LatencySampleTest, MergeEqualsUnion) {
  LatencySample a, b;
  for (int i = 0; i < 50; ++i) a.Add(i);
  for (int i = 50; i < 100; ++i) b.Add(i);
  a.MergeFrom(b);
  EXPECT_EQ(a.count(), 100u);
  EXPECT_DOUBLE_EQ(a.Summarize().mean_ns, 49.5);
}

TEST(LatencySampleTest, LpNormP2) {
  LatencySample s;
  s.Add(3);
  s.Add(4);
  EXPECT_NEAR(s.LpNorm(2), 5.0, 1e-9);
}

TEST(LatencySampleTest, LpNormP1IsSum) {
  LatencySample s;
  s.Add(1);
  s.Add(2);
  s.Add(3);
  EXPECT_NEAR(s.LpNorm(1), 6.0, 1e-9);
}

TEST(LatencySampleTest, LpNormLargePApproachesMax) {
  LatencySample s;
  s.Add(10);
  s.Add(1000);
  EXPECT_NEAR(s.LpNorm(64), 1000.0, 1.0);
}

TEST(LatencySampleTest, NormalizedLpInvariantToDuplication) {
  LatencySample a, b;
  for (int i = 1; i <= 10; ++i) a.Add(i);
  for (int r = 0; r < 4; ++r) {
    for (int i = 1; i <= 10; ++i) b.Add(i);
  }
  EXPECT_NEAR(a.NormalizedLpNorm(2), b.NormalizedLpNorm(2), 1e-9);
}

TEST(OnlineStatsTest, MatchesBatch) {
  OnlineStats o;
  std::vector<double> xs = {1.5, 2.5, 9, -4, 7, 0.25};
  for (double x : xs) o.Add(x);
  EXPECT_NEAR(o.mean(), Mean(xs), 1e-12);
  EXPECT_NEAR(o.variance(), Variance(xs), 1e-12);
}

TEST(OnlineStatsTest, MergeMatchesCombined) {
  OnlineStats a, b, all;
  for (int i = 0; i < 10; ++i) {
    a.Add(i * 1.5);
    all.Add(i * 1.5);
  }
  for (int i = 0; i < 7; ++i) {
    b.Add(100 - i);
    all.Add(100 - i);
  }
  a.MergeFrom(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(CovarianceTest, KnownValues) {
  std::vector<double> x = {1, 2, 3, 4};
  std::vector<double> y = {2, 4, 6, 8};
  EXPECT_NEAR(Covariance(x, y), 2.5, 1e-12);  // Var(x) = 1.25, scale 2
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
}

TEST(CovarianceTest, AntiCorrelated) {
  std::vector<double> x = {1, 2, 3, 4};
  std::vector<double> y = {8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(x, y), -1.0, 1e-12);
}

TEST(CovarianceTest, ZeroVarianceGivesZeroCorrelation) {
  std::vector<double> x = {5, 5, 5};
  std::vector<double> y = {1, 2, 3};
  EXPECT_EQ(PearsonCorrelation(x, y), 0.0);
}

// Regression: mismatched lengths used to silently return 0 (indistinguishable
// from genuinely uncorrelated series). They now truncate to the common prefix,
// with both means recomputed over that prefix.
TEST(CovarianceTest, MismatchedLengthsTruncateToCommonPrefix) {
  std::vector<double> x = {1, 2};
  std::vector<double> y = {1, 2, 1000};
  EXPECT_NEAR(Covariance(x, y), Covariance({1, 2}, {1, 2}), 1e-12);
  EXPECT_NEAR(Covariance(x, y), 0.25, 1e-12);
  // Symmetric in which argument is longer.
  EXPECT_NEAR(Covariance(y, x), Covariance(x, y), 1e-12);
  // Pearson follows the same truncation rule: the tail can't flip the sign.
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
  // An empty common prefix is the only zero-by-fiat case.
  EXPECT_EQ(Covariance({}, y), 0.0);
  EXPECT_EQ(Covariance(x, {}), 0.0);
}

// The prefix means must be recomputed, not reused from the full vectors:
// a huge dropped tail element would otherwise bias every residual.
TEST(CovarianceTest, TruncationRecomputesMeansOverPrefix) {
  std::vector<double> x = {1, 2, 3};
  std::vector<double> y = {4, 6, 8, 1e9};
  EXPECT_NEAR(Covariance(x, y), Covariance(x, {4, 6, 8}), 1e-9);
}

// The decomposition TProfiler relies on: Var(X+Y) = Var X + Var Y + 2Cov.
TEST(CovarianceTest, VarianceOfSumIdentity) {
  std::vector<double> x = {1, 7, 3, 9, 2};
  std::vector<double> y = {4, 1, 8, 2, 6};
  std::vector<double> sum(5);
  for (int i = 0; i < 5; ++i) sum[i] = x[i] + y[i];
  EXPECT_NEAR(Variance(sum),
              Variance(x) + Variance(y) + 2 * Covariance(x, y), 1e-9);
}

// Regression: PercentileSorted used to linearly interpolate (p50 of {10,20}
// was 15), disagreeing with Histogram::Percentile's ceil-rank convention that
// every other latency path uses — and it read out of bounds for pct outside
// [0, 100]. It is now exact ceil-rank.
TEST(PercentileTest, CeilRankConvention) {
  std::vector<int64_t> v = {10, 20};
  EXPECT_NEAR(PercentileSorted(v, 50), 10.0, 1e-9);  // ceil(0.5*2)=1st sample
  EXPECT_NEAR(PercentileSorted(v, 50.1), 20.0, 1e-9);
  EXPECT_NEAR(PercentileSorted(v, 0), 10.0, 1e-9);
  EXPECT_NEAR(PercentileSorted(v, 100), 20.0, 1e-9);
}

TEST(PercentileTest, EdgeCases) {
  EXPECT_EQ(PercentileSorted({}, 50), 0.0);
  std::vector<int64_t> one = {42};
  for (double pct : {-10.0, 0.0, 0.001, 50.0, 99.9, 100.0, 1000.0}) {
    EXPECT_EQ(PercentileSorted(one, pct), 42.0) << "pct=" << pct;
  }
  // Out-of-range pct clamps to min/max instead of indexing out of bounds
  // (pct < 0 used to wrap a negative rank through size_t).
  std::vector<int64_t> v = {1, 2, 3, 4, 5};
  EXPECT_EQ(PercentileSorted(v, -50), 1.0);
  EXPECT_EQ(PercentileSorted(v, 250), 5.0);
  // Tiny positive pct is the minimum (rank clamps up to 1).
  EXPECT_EQ(PercentileSorted(v, 1e-9), 1.0);
}

// Shared property test: the tuner's objective reads percentiles both from raw
// sample vectors (PercentileSorted) and registry histograms
// (Histogram::Percentile). With values in [0, 16) — where histogram buckets
// are exact — the two must agree everywhere.
TEST(PercentileTest, AgreesWithHistogramOnExactBuckets) {
  Rng rng(20260805);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t n = 1 + rng.Uniform(40);
    std::vector<int64_t> samples;
    Histogram h;
    for (size_t i = 0; i < n; ++i) {
      const int64_t v = static_cast<int64_t>(rng.Uniform(16));
      samples.push_back(v);
      h.Add(v);
    }
    std::sort(samples.begin(), samples.end());
    for (double pct : {0.0, 0.5, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9, 100.0}) {
      EXPECT_EQ(static_cast<int64_t>(PercentileSorted(samples, pct)),
                h.Percentile(pct))
          << "n=" << n << " pct=" << pct << " trial=" << trial;
    }
  }
}

// Welford with a huge common offset: the naive sum-of-squares formula loses
// all precision here; Welford must not, and variance() must clamp the m2
// accumulator's rounding residue so stddev() can never be NaN.
TEST(OnlineStatsTest, NearConstantSeriesNoCatastrophicCancellation) {
  OnlineStats o;
  for (int i = 0; i < 1000; ++i) o.Add(1e15 + (i % 2));
  EXPECT_NEAR(o.variance(), 0.25, 1e-3);
  EXPECT_GE(o.variance(), 0.0);
  EXPECT_FALSE(std::isnan(o.stddev()));
}

TEST(OnlineStatsTest, ConstantHugeSeriesVarianceIsZeroNotNegative) {
  OnlineStats o;
  for (int i = 0; i < 257; ++i) o.Add(9.007199254740993e15);
  EXPECT_GE(o.variance(), 0.0);
  EXPECT_EQ(o.stddev(), 0.0);
  EXPECT_FALSE(std::isnan(o.stddev()));
}

TEST(OnlineStatsTest, MergeOfNearConstantHalvesStaysNonNegative) {
  OnlineStats a, b;
  for (int i = 0; i < 100; ++i) a.Add(1e15);
  for (int i = 0; i < 100; ++i) b.Add(1e15 + 1e-3);
  a.MergeFrom(b);
  EXPECT_GE(a.variance(), 0.0);
  EXPECT_FALSE(std::isnan(a.stddev()));
}

TEST(SummarizeVectorTest, MatchesSample) {
  std::vector<int64_t> v = {5, 1, 9, 3};
  const LatencySummary s = SummarizeVector(v);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean_ns, 4.5);
  EXPECT_NEAR(LpNormOf(v, 1), 18.0, 1e-9);
}

}  // namespace
}  // namespace tdp
