#include "log/redo_log.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "common/work.h"

namespace tdp::log {
namespace {

SimDiskConfig FastDisk() {
  SimDiskConfig cfg;
  cfg.base_latency_ns = 20000;
  cfg.sigma = 0.1;
  cfg.flush_barrier_ns = 10000;
  return cfg;
}

TEST(RedoLogTest, EagerFlushIsDurableImmediately) {
  SimDisk disk(FastDisk());
  RedoLogConfig cfg;
  cfg.policy = FlushPolicy::kEagerFlush;
  cfg.disk = &disk;
  RedoLog log(cfg);
  log.Start();
  const uint64_t lsn = log.Commit(7, 256);
  EXPECT_GE(log.durable_lsn(), lsn);
  const std::vector<uint64_t> survivors = log.SimulateCrash();
  ASSERT_EQ(survivors.size(), 1u);
  EXPECT_EQ(survivors[0], 7u);
}

TEST(RedoLogTest, LazyFlushCommitsBeforeDurability) {
  SimDisk disk(FastDisk());
  RedoLogConfig cfg;
  cfg.policy = FlushPolicy::kLazyFlush;
  cfg.disk = &disk;
  cfg.flusher_interval_ns = MillisToNanos(500);  // long: crash before flush
  RedoLog log(cfg);
  log.Start();
  const uint64_t lsn = log.Commit(7, 256);
  EXPECT_GE(log.written_lsn(), lsn);   // written by the worker...
  EXPECT_LT(log.durable_lsn(), lsn);   // ...but not yet durable
  const std::vector<uint64_t> survivors = log.SimulateCrash();
  EXPECT_TRUE(survivors.empty());  // forward progress lost (Appendix B)
}

TEST(RedoLogTest, LazyWriteDefersEverything) {
  SimDisk disk(FastDisk());
  RedoLogConfig cfg;
  cfg.policy = FlushPolicy::kLazyWrite;
  cfg.disk = &disk;
  cfg.flusher_interval_ns = MillisToNanos(500);
  RedoLog log(cfg);
  log.Start();
  const uint64_t before = disk.stats().writes.load();
  log.Commit(7, 256);
  EXPECT_EQ(disk.stats().writes.load(), before);  // nothing on commit path
  EXPECT_EQ(log.written_lsn(), 0u);
  log.SimulateCrash();
}

TEST(RedoLogTest, BackgroundFlusherEventuallyDurable) {
  SimDisk disk(FastDisk());
  RedoLogConfig cfg;
  cfg.policy = FlushPolicy::kLazyWrite;
  cfg.disk = &disk;
  cfg.flusher_interval_ns = MillisToNanos(5);
  RedoLog log(cfg);
  log.Start();
  const uint64_t lsn = log.Commit(9, 128);
  const int64_t deadline = NowNanos() + MillisToNanos(2000);
  while (log.durable_lsn() < lsn && NowNanos() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(log.durable_lsn(), lsn);
  const std::vector<uint64_t> survivors = log.SimulateCrash();
  ASSERT_EQ(survivors.size(), 1u);
  EXPECT_EQ(survivors[0], 9u);
}

TEST(RedoLogTest, LsnsAreMonotonic) {
  RedoLogConfig cfg;  // no disk: I/O free
  RedoLog log(cfg);
  log.Start();
  uint64_t prev = 0;
  for (int i = 0; i < 100; ++i) {
    const uint64_t lsn = log.Commit(i, 10);
    EXPECT_GT(lsn, prev);
    prev = lsn;
  }
}

TEST(RedoLogTest, GroupCommitCoalescesFlushes) {
  SimDiskConfig dcfg = FastDisk();
  dcfg.base_latency_ns = 500000;  // slow flushes force grouping
  dcfg.sigma = 0;
  SimDisk disk(dcfg);
  RedoLogConfig cfg;
  cfg.policy = FlushPolicy::kEagerFlush;
  cfg.disk = &disk;
  RedoLog log(cfg);
  log.Start();

  constexpr int kThreads = 8, kPer = 4;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      for (int i = 0; i < kPer; ++i) log.Commit(t * 100 + i, 64);
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(log.stats().commits.load(), uint64_t{kThreads * kPer});
  // Group commit: strictly fewer flushes than commits.
  EXPECT_LT(log.stats().flushes.load(), uint64_t{kThreads * kPer});
  EXPECT_GT(log.stats().group_commit_riders.load(), 0u);
  // All commits durable.
  const std::vector<uint64_t> survivors = log.SimulateCrash();
  EXPECT_EQ(survivors.size(), uint64_t{kThreads * kPer});
}

TEST(RedoLogTest, CrashPartitionsByDurableLsn) {
  SimDisk disk(FastDisk());
  RedoLogConfig cfg;
  cfg.policy = FlushPolicy::kLazyFlush;
  cfg.disk = &disk;
  cfg.flusher_interval_ns = MillisToNanos(10);
  RedoLog log(cfg);
  log.Start();
  log.Commit(1, 64);
  // Let the flusher make txn 1 durable.
  const int64_t deadline = NowNanos() + MillisToNanos(2000);
  while (log.durable_lsn() < 1 && NowNanos() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(log.durable_lsn(), 1u);
  log.Stop();  // flusher gone; next commit cannot become durable
  log.Commit(2, 64);
  const std::vector<uint64_t> survivors = log.SimulateCrash();
  EXPECT_EQ(survivors, std::vector<uint64_t>{1});
}

TEST(RedoLogTest, StopIsIdempotent) {
  RedoLog log(RedoLogConfig{});
  log.Start();
  log.Stop();
  log.Stop();
  SUCCEED();
}

}  // namespace
}  // namespace tdp::log
