#include "engine/mysqlmini.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace tdp::engine {
namespace {

MySQLMiniConfig FastConfig() {
  MySQLMiniConfig cfg;
  cfg.row_work_ns = 100;
  cfg.btree.level_work_ns = 50;
  cfg.btree.insert_work_ns = 100;
  cfg.data_disk.base_latency_ns = 1000;
  cfg.data_disk.sigma = 0;
  cfg.log_disk.base_latency_ns = 1000;
  cfg.log_disk.sigma = 0;
  cfg.log_disk.flush_barrier_ns = 0;
  cfg.lock.wait_timeout_ns = MillisToNanos(2000);
  return cfg;
}

TEST(MySQLMiniTest, CreateTableAndBulkLoad) {
  MySQLMini db(FastConfig());
  const uint32_t t = db.CreateTable("acct", 64);
  db.BulkUpsert(t, 1, storage::Row{100});
  db.BulkUpsert(t, 2, storage::Row{200});
  EXPECT_EQ(db.TableRowCount(t), 2u);
  EXPECT_EQ(db.TableId("acct"), t);
}

TEST(MySQLMiniTest, CommitPersistsUpdate) {
  MySQLMini db(FastConfig());
  const uint32_t t = db.CreateTable("acct", 64);
  db.BulkUpsert(t, 1, storage::Row{100});
  auto conn = db.Connect();
  ASSERT_TRUE(conn->Begin().ok());
  ASSERT_TRUE(conn->Update(t, 1, 0, 25).ok());
  ASSERT_TRUE(conn->Commit().ok());

  ASSERT_TRUE(conn->Begin().ok());
  ASSERT_TRUE(conn->Select(t, 1).ok());
  Result<int64_t> v = conn->ReadColumn(t, 1, 0);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 125);
  ASSERT_TRUE(conn->Commit().ok());
}

TEST(MySQLMiniTest, RollbackUndoesUpdateAndInsert) {
  MySQLMini db(FastConfig());
  const uint32_t t = db.CreateTable("acct", 64);
  db.BulkUpsert(t, 1, storage::Row{100});
  auto conn = db.Connect();
  ASSERT_TRUE(conn->Begin().ok());
  ASSERT_TRUE(conn->Update(t, 1, 0, 25).ok());
  ASSERT_TRUE(conn->Insert(t, 2, storage::Row{7}).ok());
  conn->Rollback();

  ASSERT_TRUE(conn->Begin().ok());
  ASSERT_TRUE(conn->Select(t, 1).ok());
  EXPECT_EQ(*conn->ReadColumn(t, 1, 0), 100);
  EXPECT_TRUE(conn->Select(t, 2).ok());  // lock ok...
  EXPECT_TRUE(conn->ReadColumn(t, 2, 0).status().IsNotFound());  // ...row gone
  ASSERT_TRUE(conn->Commit().ok());
}

TEST(MySQLMiniTest, RollbackUndoesDelete) {
  MySQLMini db(FastConfig());
  const uint32_t t = db.CreateTable("acct", 64);
  db.BulkUpsert(t, 1, storage::Row{42});
  auto conn = db.Connect();
  ASSERT_TRUE(conn->Begin().ok());
  ASSERT_TRUE(conn->Delete(t, 1).ok());
  conn->Rollback();
  ASSERT_TRUE(conn->Begin().ok());
  EXPECT_EQ(*conn->ReadColumn(t, 1, 0), 42);
  ASSERT_TRUE(conn->Commit().ok());
}

TEST(MySQLMiniTest, BeginTwiceRejected) {
  MySQLMini db(FastConfig());
  auto conn = db.Connect();
  ASSERT_TRUE(conn->Begin().ok());
  EXPECT_TRUE(conn->Begin().IsInvalidArgument());
  ASSERT_TRUE(conn->Commit().ok());
}

TEST(MySQLMiniTest, OpsWithoutBeginRejected) {
  MySQLMini db(FastConfig());
  const uint32_t t = db.CreateTable("acct", 64);
  auto conn = db.Connect();
  EXPECT_TRUE(conn->Select(t, 1).IsInvalidArgument());
  EXPECT_TRUE(conn->Commit().IsInvalidArgument());
}

TEST(MySQLMiniTest, SelectMissingRowStillLocksButReadFails) {
  MySQLMini db(FastConfig());
  const uint32_t t = db.CreateTable("acct", 64);
  auto conn = db.Connect();
  ASSERT_TRUE(conn->Begin().ok());
  EXPECT_TRUE(conn->Select(t, 999).ok());  // gap-style lock on the key
  EXPECT_TRUE(conn->ReadColumn(t, 999, 0).status().IsNotFound());
  ASSERT_TRUE(conn->Commit().ok());
}

TEST(MySQLMiniTest, UpdateMissingRowReturnsNotFound) {
  MySQLMini db(FastConfig());
  const uint32_t t = db.CreateTable("acct", 64);
  auto conn = db.Connect();
  ASSERT_TRUE(conn->Begin().ok());
  EXPECT_TRUE(conn->Update(t, 999, 0, 1).IsNotFound());
  // Transaction remains usable (a read miss is not fatal).
  EXPECT_TRUE(conn->Commit().ok());
}

TEST(MySQLMiniTest, DuplicateInsertReturnsInvalidArgument) {
  MySQLMini db(FastConfig());
  const uint32_t t = db.CreateTable("acct", 64);
  db.BulkUpsert(t, 1, storage::Row{1});
  auto conn = db.Connect();
  ASSERT_TRUE(conn->Begin().ok());
  EXPECT_TRUE(conn->Insert(t, 1, storage::Row{}).IsInvalidArgument());
  EXPECT_TRUE(conn->Commit().ok());
}

TEST(MySQLMiniTest, WriteConflictBlocksUntilCommit) {
  MySQLMini db(FastConfig());
  const uint32_t t = db.CreateTable("acct", 64);
  db.BulkUpsert(t, 1, storage::Row{0});
  auto c1 = db.Connect();
  auto c2 = db.Connect();
  ASSERT_TRUE(c1->Begin().ok());
  ASSERT_TRUE(c1->Update(t, 1, 0, 1).ok());

  std::atomic<bool> second_done{false};
  std::thread t2([&] {
    ASSERT_TRUE(c2->Begin().ok());
    ASSERT_TRUE(c2->Update(t, 1, 0, 1).ok());
    second_done.store(true);
    ASSERT_TRUE(c2->Commit().ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(second_done.load());
  ASSERT_TRUE(c1->Commit().ok());
  t2.join();
  EXPECT_TRUE(second_done.load());

  auto c3 = db.Connect();
  ASSERT_TRUE(c3->Begin().ok());
  EXPECT_EQ(*c3->ReadColumn(t, 1, 0), 2);
  ASSERT_TRUE(c3->Commit().ok());
}

TEST(MySQLMiniTest, NoLostUpdatesUnderConcurrency) {
  for (auto policy : {lock::SchedulerPolicy::kFCFS,
                      lock::SchedulerPolicy::kVATS,
                      lock::SchedulerPolicy::kRS}) {
    MySQLMiniConfig cfg = FastConfig();
    cfg.lock.policy = policy;
    MySQLMini db(cfg);
    const uint32_t t = db.CreateTable("counter", 64);
    db.BulkUpsert(t, 1, storage::Row{0});
    constexpr int kThreads = 8, kIters = 50;
    std::atomic<int> committed{0};
    std::vector<std::thread> ts;
    for (int i = 0; i < kThreads; ++i) {
      ts.emplace_back([&] {
        auto conn = db.Connect();
        for (int j = 0; j < kIters; ++j) {
          for (;;) {
            ASSERT_TRUE(conn->Begin().ok());
            Status s = conn->Update(t, 1, 0, 1);
            if (s.ok()) s = conn->Commit();
            else conn->Rollback();
            if (s.ok()) {
              committed.fetch_add(1);
              break;
            }
          }
        }
      });
    }
    for (auto& th : ts) th.join();
    auto conn = db.Connect();
    ASSERT_TRUE(conn->Begin().ok());
    EXPECT_EQ(*conn->ReadColumn(t, 1, 0), committed.load());
    EXPECT_EQ(committed.load(), kThreads * kIters);
    ASSERT_TRUE(conn->Commit().ok());
  }
}

TEST(MySQLMiniTest, DeadlockVictimCanRetry) {
  MySQLMini db(FastConfig());
  const uint32_t t = db.CreateTable("acct", 64);
  db.BulkUpsert(t, 1, storage::Row{0});
  db.BulkUpsert(t, 2, storage::Row{0});

  std::atomic<int> deadlock_count{0};
  auto clash = [&](uint64_t first, uint64_t second) {
    auto conn = db.Connect();
    for (;;) {
      ASSERT_TRUE(conn->Begin().ok());
      Status s = conn->Update(t, first, 0, 1);
      if (s.ok()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        s = conn->Update(t, second, 0, 1);
      }
      if (s.ok()) {
        ASSERT_TRUE(conn->Commit().ok());
        return;
      }
      if (s.IsDeadlock()) deadlock_count.fetch_add(1);
      conn->Rollback();
    }
  };
  std::thread a(clash, 1, 2), b(clash, 2, 1);
  a.join();
  b.join();
  // Both eventually committed; the final values reflect exactly two
  // increments per row (one per committed transaction).
  auto conn = db.Connect();
  ASSERT_TRUE(conn->Begin().ok());
  EXPECT_EQ(*conn->ReadColumn(t, 1, 0), 2);
  EXPECT_EQ(*conn->ReadColumn(t, 2, 0), 2);
  ASSERT_TRUE(conn->Commit().ok());
}

TEST(MySQLMiniTest, CommittedTxnsSurviveCrash) {
  MySQLMiniConfig cfg = FastConfig();
  cfg.flush_policy = log::FlushPolicy::kEagerFlush;
  MySQLMini db(cfg);
  const uint32_t t = db.CreateTable("acct", 64);
  db.BulkUpsert(t, 1, storage::Row{0});
  auto conn = db.Connect();
  ASSERT_TRUE(conn->Begin().ok());
  ASSERT_TRUE(conn->Update(t, 1, 0, 5).ok());
  ASSERT_TRUE(conn->Commit().ok());
  const uint64_t committed_txn = conn->current_txn_id();
  const std::vector<uint64_t> survivors = db.redo_log().SimulateCrash();
  EXPECT_EQ(survivors.size(), 1u);
  EXPECT_EQ(survivors[0], committed_txn);
}

TEST(MySQLMiniTest, SessionDestructorRollsBackOpenTxn) {
  MySQLMini db(FastConfig());
  const uint32_t t = db.CreateTable("acct", 64);
  db.BulkUpsert(t, 1, storage::Row{100});
  {
    auto conn = db.Connect();
    ASSERT_TRUE(conn->Begin().ok());
    ASSERT_TRUE(conn->Update(t, 1, 0, 50).ok());
    // destructor fires with the transaction open
  }
  auto conn = db.Connect();
  ASSERT_TRUE(conn->Begin().ok());
  EXPECT_EQ(*conn->ReadColumn(t, 1, 0), 100);  // rolled back
  ASSERT_TRUE(conn->Commit().ok());
}

}  // namespace
}  // namespace tdp::engine
