// End-to-end: workloads under concurrency with consistency invariants, and
// TProfiler attached to a live engine.
#include <gtest/gtest.h>

#include "core/toolkit.h"
#include "engine/mysqlmini.h"
#include "tprofiler/analysis.h"
#include "tprofiler/profiler.h"
#include "workload/driver.h"
#include "workload/tpcc.h"

namespace tdp {
namespace {

engine::MySQLMiniConfig QuickEngine(lock::SchedulerPolicy policy) {
  engine::MySQLMiniConfig cfg;
  cfg.lock.policy = policy;
  cfg.lock.wait_timeout_ns = MillisToNanos(2000);
  cfg.row_work_ns = 500;
  cfg.btree.level_work_ns = 100;
  cfg.data_disk.base_latency_ns = 5000;
  cfg.data_disk.sigma = 0.2;
  cfg.log_disk.base_latency_ns = 10000;
  cfg.log_disk.sigma = 0.2;
  cfg.log_disk.flush_barrier_ns = 5000;
  return cfg;
}

workload::DriverConfig QuickDriver() {
  workload::DriverConfig cfg;
  cfg.tps = 1500;
  cfg.connections = 16;
  cfg.num_txns = 1200;
  cfg.warmup_txns = 200;
  return cfg;
}

// TPC-C money conservation: every Payment adds `amount` to warehouse YTD
// and district YTD and subtracts it from a customer balance. So
// sum(warehouse YTD) == sum(district YTD) == initial customer balance sum
// minus current sum.
void CheckTpccConsistency(engine::MySQLMini* db,
                          const workload::TpccConfig& cfg) {
  const uint32_t tw = db->TableId("warehouse");
  const uint32_t td = db->TableId("district");
  const uint32_t tc = db->TableId("customer");
  auto conn = db->Connect();
  ASSERT_TRUE(conn->Begin().ok());
  int64_t w_ytd = 0, d_ytd = 0, c_balance = 0;
  for (int w = 0; w < cfg.warehouses; ++w) {
    w_ytd += *conn->ReadColumn(tw, w, 0);
    for (int d = 0; d < cfg.districts_per_wh; ++d) {
      const uint64_t dk =
          static_cast<uint64_t>(w) * cfg.districts_per_wh + d;
      d_ytd += *conn->ReadColumn(td, dk, 1);
      for (int c = 0; c < cfg.customers_per_district; ++c) {
        const uint64_t ck =
            dk * cfg.customers_per_district + static_cast<uint64_t>(c);
        c_balance += *conn->ReadColumn(tc, ck, 0);
      }
    }
  }
  ASSERT_TRUE(conn->Commit().ok());
  EXPECT_EQ(w_ytd, d_ytd) << "warehouse YTD must equal district YTD";
  const int64_t initial_balance = int64_t{cfg.warehouses} *
                                  cfg.districts_per_wh *
                                  cfg.customers_per_district * 1000;
  EXPECT_EQ(initial_balance - c_balance, w_ytd)
      << "customer balances must fund the YTD totals";
}

class TpccConsistencyTest
    : public ::testing::TestWithParam<lock::SchedulerPolicy> {};

TEST_P(TpccConsistencyTest, MoneyConservedUnderConcurrency) {
  engine::MySQLMini db(QuickEngine(GetParam()));
  workload::TpccConfig tcfg;
  tcfg.warehouses = 2;
  workload::Tpcc tpcc(tcfg);
  tpcc.Load(&db);
  const workload::RunResult result =
      RunConstantRate(&db, &tpcc, QuickDriver());
  EXPECT_GT(result.committed, 1000u);
  EXPECT_EQ(result.gave_up, 0u);
  CheckTpccConsistency(&db, tcfg);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, TpccConsistencyTest,
    ::testing::Values(lock::SchedulerPolicy::kFCFS,
                      lock::SchedulerPolicy::kVATS,
                      lock::SchedulerPolicy::kRS),
    [](const ::testing::TestParamInfo<lock::SchedulerPolicy>& info) {
      return lock::SchedulerPolicyName(info.param);
    });

TEST(ProfiledEngineTest, TProfilerSeesLockWaitsOnContendedRun) {
  engine::MySQLMini db(QuickEngine(lock::SchedulerPolicy::kFCFS));
  workload::TpccConfig tcfg;
  tcfg.warehouses = 1;  // maximum contention
  workload::Tpcc tpcc(tcfg);
  tpcc.Load(&db);

  tprof::SessionConfig scfg;
  scfg.enabled = {"dispatch_command", "row_search_for_mysql", "row_upd_step",
                  "row_ins_clust_index_entry_low",
                  "lock_wait_suspend_thread", "os_event_wait", "trx_commit",
                  "fil_flush"};
  tprof::Profiler::Instance().StartSession(scfg);
  workload::DriverConfig dcfg = QuickDriver();
  dcfg.num_txns = 800;
  dcfg.warmup_txns = 0;
  RunConstantRate(&db, &tpcc, dcfg);
  tprof::TraceData data = tprof::Profiler::Instance().EndSession();

  tprof::VarianceAnalysis analysis(data,
                                   tprof::Profiler::Instance().path_tree());
  EXPECT_GT(analysis.num_txns(), 700u);
  EXPECT_GT(analysis.total_variance(), 0);

  // The os_event_wait call sites must appear in the tree with distinct
  // paths under select vs update parents.
  bool saw_wait = false;
  for (const auto& node : analysis.nodes()) {
    if (node.path.find("os_event_wait") != std::string::npos) saw_wait = true;
  }
  EXPECT_TRUE(saw_wait);

  // Shares are finite and the report renders.
  const auto shares = analysis.FunctionShares();
  EXPECT_FALSE(shares.empty());
  const std::string report = analysis.ReportString(5);
  EXPECT_FALSE(report.empty());
}

TEST(ToolkitTest, LoadAndRunProducesMetrics) {
  engine::MySQLMiniConfig cfg = QuickEngine(lock::SchedulerPolicy::kVATS);
  engine::MySQLMini db(cfg);
  workload::TpccConfig tcfg;
  tcfg.warehouses = 2;
  workload::Tpcc tpcc(tcfg);
  workload::DriverConfig dcfg = QuickDriver();
  dcfg.num_txns = 600;
  dcfg.warmup_txns = 100;
  const core::RunOutcome out = core::LoadAndRun(&db, &tpcc, dcfg);
  EXPECT_GT(out.metrics.count, 0u);
  EXPECT_GT(out.metrics.mean_ms, 0);
  EXPECT_GT(out.metrics.p99_ms, 0);
}

}  // namespace
}  // namespace tdp
