// sched::ConflictPredictor properties (docs/scheduling.md): exact decay
// arithmetic, footprint-score symmetry, concurrent record/query safety over
// the sharded table, and bit-identical replay of a fixed event trace — the
// determinism contract the header promises.
#include "sched/conflict_predictor.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/random.h"

namespace tdp::sched {
namespace {

PredictorConfig SmallConfig() {
  PredictorConfig cfg;
  cfg.half_life_ns = MillisToNanos(10);
  cfg.table_buckets = 64;
  return cfg;
}

// --- decay arithmetic -------------------------------------------------------

TEST(ConflictPredictorTest, FreshKeyScoresZero) {
  ConflictPredictor p(SmallConfig());
  EXPECT_EQ(p.KeyHeat(12345, 0), 0.0);
  EXPECT_EQ(p.FootprintScore({1, 2, 3}, 0), 0.0);
  EXPECT_EQ(p.InflightScore({1, 2, 3}, 0), 0.0);
  EXPECT_EQ(p.tracked_keys(), 0u);
}

TEST(ConflictPredictorTest, HeatHalvesExactlyAtEachHalfLife) {
  // exp2 of integer half-life multiples is exact in binary floating point,
  // so the halving sequence admits exact equality, not near-equality.
  const PredictorConfig cfg = SmallConfig();
  ConflictPredictor p(cfg);
  const uint64_t fp = ConflictPredictor::Fingerprint(3, 42);
  const int64_t t0 = 1000000;
  p.RecordConflict(fp, 8.0, t0);
  EXPECT_EQ(p.KeyHeat(fp, t0), 8.0);
  EXPECT_EQ(p.KeyHeat(fp, t0 + cfg.half_life_ns), 4.0);
  EXPECT_EQ(p.KeyHeat(fp, t0 + 2 * cfg.half_life_ns), 2.0);
  EXPECT_EQ(p.KeyHeat(fp, t0 + 3 * cfg.half_life_ns), 1.0);
  // KeyHeat is read-only: asking at a later time must not have rebased.
  EXPECT_EQ(p.KeyHeat(fp, t0), 8.0);
}

TEST(ConflictPredictorTest, DecayIsMonotonicNonIncreasing) {
  ConflictPredictor p(SmallConfig());
  const uint64_t fp = 77;
  const int64_t t0 = 5000;
  p.RecordConflict(fp, 5.0, t0);
  Rng rng(11);
  int64_t now = t0;
  double prev = p.KeyHeat(fp, now);
  for (int i = 0; i < 200; ++i) {
    now += 1 + static_cast<int64_t>(rng.Uniform(MillisToNanos(3)));
    const double h = p.KeyHeat(fp, now);
    EXPECT_LE(h, prev) << "heat rose with time at step " << i;
    EXPECT_GT(h, 0.0);  // exponential decay never reaches zero
    prev = h;
  }
}

TEST(ConflictPredictorTest, RecordAfterDecayAccumulatesOnDecayedBase) {
  const PredictorConfig cfg = SmallConfig();
  ConflictPredictor p(cfg);
  const uint64_t fp = 9;
  p.RecordConflict(fp, 4.0, 0);
  p.RecordConflict(fp, 1.0, cfg.half_life_ns);  // 4 * 0.5 + 1
  EXPECT_EQ(p.KeyHeat(fp, cfg.half_life_ns), 3.0);
}

TEST(ConflictPredictorTest, OutOfOrderEventRebasesForwardOnly) {
  // An event with an older timestamp than the counter's basis adds its
  // weight at the current basis; it must not un-decay the counter.
  const PredictorConfig cfg = SmallConfig();
  ConflictPredictor p(cfg);
  const uint64_t fp = 13;
  p.RecordConflict(fp, 2.0, cfg.half_life_ns);
  p.RecordConflict(fp, 1.0, 0);  // stale timestamp
  EXPECT_EQ(p.KeyHeat(fp, cfg.half_life_ns), 3.0);
  EXPECT_EQ(p.KeyHeat(fp, 2 * cfg.half_life_ns), 1.5);
}

// --- footprint scoring ------------------------------------------------------

TEST(ConflictPredictorTest, IdenticalFootprintsScoreIdentically) {
  ConflictPredictor p(SmallConfig());
  const int64_t t0 = 1000;
  std::vector<uint64_t> fps;
  for (uint32_t i = 0; i < 8; ++i) {
    fps.push_back(ConflictPredictor::Fingerprint(1, 100 + i));
    p.RecordConflict(fps.back(), 1.0 + i, t0);
  }
  const int64_t now = t0 + MillisToNanos(7);
  // Score symmetry: two transactions declaring the same footprint must be
  // indistinguishable to both decision points, bit for bit.
  EXPECT_EQ(p.FootprintScore(fps, now), p.FootprintScore(fps, now));
  lock::TxnContext a(1), b(2);
  a.footprint = fps;
  b.footprint = fps;
  EXPECT_EQ(p.PredictedWeight(a, now), p.PredictedWeight(b, now));
  // And the score is exactly the sum of the per-key heats.
  double sum = 0;
  for (uint64_t fp : fps) sum += p.KeyHeat(fp, now);
  EXPECT_EQ(p.FootprintScore(fps, now), sum);
}

TEST(ConflictPredictorTest, InflightScoreWeighsOverlapByHeatAndCount) {
  ConflictPredictor p(SmallConfig());
  const uint64_t hot = 5, cold = 6;
  const int64_t t0 = 0;
  p.RecordConflict(hot, 3.0, t0);
  // No in-flight overlap: zero, regardless of heat.
  EXPECT_EQ(p.InflightScore({hot}, t0), 0.0);
  p.RegisterInflight({hot, cold});
  EXPECT_EQ(p.InflightScore({hot}, t0), 3.0);
  EXPECT_EQ(p.InflightScore({cold}, t0), 0.0);  // in flight but never hot
  p.RegisterInflight({hot});
  EXPECT_EQ(p.InflightScore({hot}, t0), 6.0);  // two holders
  p.UnregisterInflight({hot});
  EXPECT_EQ(p.InflightScore({hot}, t0), 3.0);
  p.UnregisterInflight({hot, cold});
  EXPECT_EQ(p.InflightScore({hot, cold}, t0), 0.0);
  // cold carried no heat: fully idle entries are garbage-collected.
  EXPECT_EQ(p.KeyHeat(hot, t0), 3.0);
  EXPECT_EQ(p.tracked_keys(), 1u);
}

// --- lock::ConflictScorer learning path -------------------------------------

TEST(ConflictPredictorTest, WaitOutcomesWeighAbortsHeavierThanGrants) {
  PredictorConfig cfg = SmallConfig();
  cfg.wait_weight = 1.0;
  cfg.abort_weight = 2.0;
  ConflictPredictor p(cfg);
  const lock::RecordId rec{5, 11};
  const uint64_t fp = ConflictPredictor::Fingerprint(5, 11);
  lock::WaitObservation obs;
  obs.granted = true;
  p.OnWaitOutcome(rec, obs, 100);
  EXPECT_EQ(p.KeyHeat(fp, 100), 1.0);
  obs.granted = false;
  p.OnWaitOutcome(rec, obs, 100);
  EXPECT_EQ(p.KeyHeat(fp, 100), 3.0);
  EXPECT_EQ(p.outcomes(), 2u);
}

// --- concurrency over the sharded table -------------------------------------

TEST(ConflictPredictorTest, ConcurrentRecordAndQueryKeepExactTotals) {
  // 4 writers hammer a 64-key pool with unit weights at one fixed timestamp
  // while readers score footprints and register/unregister in-flight sets.
  // Unit weights at a fixed now make every per-key sum exact integer
  // arithmetic in doubles, so the post-join total admits exact equality —
  // any lost update or torn read shows up as a wrong count (and TSan has a
  // dense interleaving to chew on).
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 8192;
  constexpr uint64_t kKeys = 64;
  const int64_t now = MillisToNanos(100);
  PredictorConfig cfg = SmallConfig();
  cfg.table_buckets = 16;  // force heavy bucket sharing
  ConflictPredictor p(cfg);

  std::vector<uint64_t> pool;
  for (uint64_t k = 0; k < kKeys; ++k) pool.push_back(k * 2654435761u + 1);

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      Rng rng(1000 + static_cast<uint64_t>(w));
      for (int i = 0; i < kPerWriter; ++i) {
        p.RecordConflict(pool[rng.Uniform(kKeys)], 1.0, now);
      }
    });
  }
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&, r] {
      Rng rng(2000 + static_cast<uint64_t>(r));
      for (int i = 0; i < 4000; ++i) {
        const double s = p.FootprintScore(pool, now);
        EXPECT_GE(s, 0.0);
        EXPECT_GE(p.KeyHeat(pool[rng.Uniform(kKeys)], now), 0.0);
      }
    });
  }
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&] {
      for (int i = 0; i < 2000; ++i) {
        p.RegisterInflight(pool);
        EXPECT_GE(p.InflightScore(pool, now), 0.0);
        p.UnregisterInflight(pool);
      }
    });
  }
  for (auto& t : threads) t.join();

  double total = 0;
  for (uint64_t fp : pool) total += p.KeyHeat(fp, now);
  EXPECT_EQ(total, static_cast<double>(kWriters * kPerWriter));
  // Every learning event was counted exactly once (relaxed atomic, no loss).
  EXPECT_EQ(p.outcomes(), static_cast<uint64_t>(kWriters * kPerWriter));
  EXPECT_EQ(p.tracked_keys(), kKeys);
  EXPECT_EQ(p.InflightScore(pool, now), 0.0);  // registrations all balanced
}

// --- deterministic replay ---------------------------------------------------

TEST(ConflictPredictorTest, FixedTraceReplaysBitIdentically) {
  // The contract the header states: scores are a pure function of the
  // (fingerprint, weight, now_ns) event sequence. Replay one seeded trace
  // into two predictors — interleaving read-only queries into one of them —
  // and demand exact double equality throughout.
  const PredictorConfig cfg = SmallConfig();
  ConflictPredictor a(cfg), b(cfg);
  Rng rng(20260808);
  std::vector<uint64_t> pool;
  for (uint32_t k = 0; k < 32; ++k) {
    pool.push_back(ConflictPredictor::Fingerprint(2, k));
  }

  struct Event {
    uint64_t fp;
    double weight;
    int64_t now;
  };
  std::vector<Event> trace;
  int64_t now = 0;
  for (int i = 0; i < 5000; ++i) {
    now += 1 + static_cast<int64_t>(rng.Uniform(200000));
    const double w = rng.Bernoulli(0.3) ? 2.0 : (rng.Bernoulli(0.5) ? 0.5 : 1.0);
    trace.push_back({pool[rng.Uniform(pool.size())], w, now});
  }

  for (const Event& e : trace) a.RecordConflict(e.fp, e.weight, e.now);
  for (size_t i = 0; i < trace.size(); ++i) {
    b.RecordConflict(trace[i].fp, trace[i].weight, trace[i].now);
    if (i % 97 == 0) {
      // Queries must not perturb the counters (lazy decay is arithmetic,
      // never written back by reads).
      b.KeyHeat(trace[i].fp, trace[i].now + MillisToNanos(1));
      b.FootprintScore(pool, trace[i].now);
    }
  }

  const int64_t asof = now + MillisToNanos(3);
  for (uint64_t fp : pool) {
    EXPECT_EQ(a.KeyHeat(fp, asof), b.KeyHeat(fp, asof)) << "fp=" << fp;
  }
  EXPECT_EQ(a.FootprintScore(pool, asof), b.FootprintScore(pool, asof));
  EXPECT_EQ(a.outcomes(), b.outcomes());
  EXPECT_EQ(a.tracked_keys(), b.tracked_keys());
}

TEST(ConflictPredictorTest, FingerprintSeparatesTablesAndKeys) {
  // Not a cryptographic claim — just that the mixing actually uses both
  // inputs, so distinct hot records do not share one counter by accident.
  EXPECT_NE(ConflictPredictor::Fingerprint(1, 5),
            ConflictPredictor::Fingerprint(2, 5));
  EXPECT_NE(ConflictPredictor::Fingerprint(1, 5),
            ConflictPredictor::Fingerprint(1, 6));
  EXPECT_EQ(ConflictPredictor::Fingerprint(7, 9),
            ConflictPredictor::Fingerprint(7, 9));
}

}  // namespace
}  // namespace tdp::sched
