// Range reads (Connection::SelectRange) on both engines.
#include <gtest/gtest.h>

#include <memory>

#include "engine/mysqlmini.h"
#include "pg/pgmini.h"

namespace tdp {
namespace {

engine::MySQLMiniConfig FastMysql() {
  engine::MySQLMiniConfig cfg;
  cfg.row_work_ns = 100;
  cfg.btree.level_work_ns = 0;
  cfg.data_disk.base_latency_ns = 0;
  cfg.data_disk.sigma = 0;
  cfg.log_disk.base_latency_ns = 0;
  cfg.log_disk.sigma = 0;
  cfg.log_disk.flush_barrier_ns = 0;
  return cfg;
}

pg::PgMiniConfig FastPg() {
  pg::PgMiniConfig cfg;
  cfg.row_work_ns = 100;
  cfg.btree.level_work_ns = 0;
  cfg.wal.disk.base_latency_ns = 0;
  cfg.wal.disk.sigma = 0;
  cfg.wal.disk.flush_barrier_ns = 0;
  return cfg;
}

template <typename Db>
void LoadRows(Db* db, uint32_t t) {
  for (uint64_t k = 10; k < 200; k += 3) {
    db->BulkUpsert(t, k, storage::Row{static_cast<int64_t>(k)});
  }
}

template <typename Db>
void RunCommonRangeChecks(Db* db) {
  const uint32_t t = db->CreateTable("r", 64);
  LoadRows(db, t);
  auto conn = db->Connect();
  ASSERT_TRUE(conn->Begin().ok());
  // Spanning multiple pages, with gaps and missing keys.
  EXPECT_TRUE(conn->SelectRange(t, 0, 300).ok());
  // Empty range (no rows in it) is still OK.
  EXPECT_TRUE(conn->SelectRange(t, 500, 600).ok());
  // Degenerate single-key range.
  EXPECT_TRUE(conn->SelectRange(t, 10, 10).ok());
  // lo > hi rejected.
  EXPECT_TRUE(conn->SelectRange(t, 5, 4).IsInvalidArgument());
  // Span cap enforced.
  EXPECT_TRUE(conn->SelectRange(t, 0, 100000).IsInvalidArgument());
  // Unknown table rejected.
  EXPECT_TRUE(conn->SelectRange(9999, 0, 1).IsInvalidArgument());
  ASSERT_TRUE(conn->Commit().ok());
}

TEST(SelectRangeTest, MysqlRangeSemantics) {
  engine::MySQLMini db(FastMysql());
  RunCommonRangeChecks(&db);
}

TEST(SelectRangeTest, PgRangeSemantics) {
  pg::PgMini db(FastPg());
  RunCommonRangeChecks(&db);
}

TEST(SelectRangeTest, MysqlRangeTouchesPagesThroughBufferPool) {
  engine::MySQLMiniConfig cfg = FastMysql();
  cfg.buffer_pool_pages = 8;
  engine::MySQLMini db(cfg);
  const uint32_t t = db.CreateTable("r", 64);
  LoadRows(&db, t);
  auto conn = db.Connect();
  ASSERT_TRUE(conn->Begin().ok());
  const uint64_t misses_before = db.buffer_pool().stats().misses.load();
  ASSERT_TRUE(conn->SelectRange(t, 0, 255).ok());  // 4 pages at 64 rows/page
  EXPECT_GE(db.buffer_pool().stats().misses.load(), misses_before + 4);
  ASSERT_TRUE(conn->Commit().ok());
}

TEST(SelectRangeTest, MysqlLockingReadsLockEachRow) {
  engine::MySQLMiniConfig cfg = FastMysql();
  cfg.locking_reads = true;
  engine::MySQLMini db(cfg);
  const uint32_t t = db.CreateTable("r", 64);
  db.BulkUpsert(t, 1, storage::Row{1});
  db.BulkUpsert(t, 2, storage::Row{2});
  auto scanner = db.Connect();
  ASSERT_TRUE(scanner->Begin().ok());
  ASSERT_TRUE(scanner->SelectRange(t, 1, 2).ok());
  // Both rows are now S-locked: a writer must conflict.
  auto writer = db.Connect();
  ASSERT_TRUE(writer->Begin().ok());
  engine::MySQLMini* mysql = &db;
  auto [granted, waiting] = mysql->lock_manager().QueueDepths({t, 1});
  EXPECT_EQ(granted, 1u);
  writer->Rollback();
  ASSERT_TRUE(scanner->Commit().ok());
}

TEST(SelectRangeTest, NonLockingRangeDoesNotBlockOnWriter) {
  engine::MySQLMini db(FastMysql());
  const uint32_t t = db.CreateTable("r", 64);
  LoadRows(&db, t);
  auto writer = db.Connect();
  ASSERT_TRUE(writer->Begin().ok());
  ASSERT_TRUE(writer->Update(t, 10, 0, 1).ok());  // X lock on key 10
  auto reader = db.Connect();
  ASSERT_TRUE(reader->Begin().ok());
  const int64_t t0 = NowNanos();
  EXPECT_TRUE(reader->SelectRange(t, 0, 100).ok());
  EXPECT_LT(NowNanos() - t0, MillisToNanos(200));
  ASSERT_TRUE(reader->Commit().ok());
  ASSERT_TRUE(writer->Commit().ok());
}

}  // namespace
}  // namespace tdp
