// The variance-aware auto-tuner (docs/tuning.md): knob-space JSON
// round-trips, CI-aware objective ranking over synthetic histograms,
// successive halving pruning only provably-worse arms, bit-exact seeded
// determinism of the TUNE report, knob materialization onto the Toolkit
// base configs, and one small real TrialRunner run.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/random.h"
#include "core/toolkit.h"
#include "tuning/knobs.h"
#include "tuning/objective.h"
#include "tuning/search.h"
#include "tuning/trial.h"

namespace tdp::tuning {
namespace {

// A synthetic replicate: `n` latencies uniform in [center, center + spread)
// drawn from a seeded stream, plus a claimed throughput. The histogram
// quantizes to ~4% buckets, which is exactly what the objective consumes.
TrialMeasurement Synthetic(uint64_t seed, int64_t center_ns, int64_t spread_ns,
                           double tps, int n = 400) {
  Histogram h;
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    h.Add(center_ns + static_cast<int64_t>(rng.Uniform(
                          static_cast<uint64_t>(spread_ns))));
  }
  TrialMeasurement m;
  m.latency = h.Snapshot();
  m.achieved_tps = tps;
  m.committed = static_cast<uint64_t>(n);
  return m;
}

// --- knob serialization -----------------------------------------------------

TEST(TuningKnobsTest, KnobConfigJsonRoundTrip) {
  KnobConfig k;
  k.engine = engine::EngineKind::kPgMini;
  k.scheduler = lock::SchedulerPolicy::kVATS;
  k.buffer_pool_pages = 224;
  k.flush_policy = log::FlushPolicy::kLazyFlush;
  k.group_commit = true;
  k.wal_block_bytes = 16384;
  k.num_log_sets = 2;
  k.workers = 8;

  const auto r = KnobConfig::FromJson(k.ToJson());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const KnobConfig& b = r.value();
  EXPECT_EQ(b.engine, k.engine);
  EXPECT_EQ(b.scheduler, k.scheduler);
  EXPECT_EQ(b.buffer_pool_pages, k.buffer_pool_pages);
  EXPECT_EQ(b.flush_policy, k.flush_policy);
  EXPECT_EQ(b.group_commit, k.group_commit);
  EXPECT_EQ(b.wal_block_bytes, k.wal_block_bytes);
  EXPECT_EQ(b.num_log_sets, k.num_log_sets);
  EXPECT_EQ(b.workers, k.workers);
  EXPECT_EQ(b.Label(), k.Label());
}

TEST(TuningKnobsTest, KnobSpaceJsonRoundTripPreservesEnumeration) {
  KnobSpace s;
  s.schedulers = {lock::SchedulerPolicy::kFCFS, lock::SchedulerPolicy::kVATS};
  s.flush_policies = {log::FlushPolicy::kEagerFlush,
                      log::FlushPolicy::kLazyFlush};
  s.workers = {2, 4};
  const std::vector<KnobConfig> arms = s.Enumerate();
  ASSERT_EQ(arms.size(), 8u);  // 2 schedulers x 2 policies x 2 worker counts

  const auto r = KnobSpace::FromJson(s.ToJson());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const std::vector<KnobConfig> again = r.value().Enumerate();
  ASSERT_EQ(again.size(), arms.size());
  for (size_t i = 0; i < arms.size(); ++i) {
    EXPECT_EQ(again[i].Label(), arms[i].Label()) << "arm " << i;
  }
}

TEST(TuningKnobsTest, FromJsonRejectsBadEnumAndWrongType) {
  json::Value bad_enum = KnobConfig().ToJson();
  bad_enum.Set("flush_policy", json::Value::Str("bogus"));
  EXPECT_FALSE(KnobConfig::FromJson(bad_enum).ok());

  json::Value bad_type = KnobConfig().ToJson();
  bad_type.Set("workers", json::Value::Str("four"));
  EXPECT_FALSE(KnobConfig::FromJson(bad_type).ok());

  // Missing members keep defaults rather than failing.
  const auto sparse = KnobConfig::FromJson(json::Value::Object());
  ASSERT_TRUE(sparse.ok());
  EXPECT_EQ(sparse.value().workers, 4);
  EXPECT_EQ(sparse.value().engine, engine::EngineKind::kMySQLMini);
}

// --- objective --------------------------------------------------------------

TEST(TuningObjectiveTest, SeparatedIntervalsRankConfidently) {
  Objective obj;  // p999 goal, no floor
  // Two paired replicates each: a tight 4ms arm vs a wide 30ms arm.
  const ArmScore fast = obj.Score({Synthetic(11, 4000000, 500000, 430),
                                   Synthetic(12, 4000000, 500000, 430)});
  const ArmScore slow = obj.Score({Synthetic(11, 30000000, 8000000, 430),
                                   Synthetic(12, 30000000, 8000000, 430)});
  EXPECT_TRUE(fast.feasible);
  EXPECT_TRUE(slow.feasible);
  EXPECT_EQ(fast.samples, 800u);
  EXPECT_LE(fast.ci_lo, fast.score);
  EXPECT_LE(fast.score, fast.ci_hi);
  EXPECT_LT(fast.score, slow.score);
  EXPECT_LT(fast.ci_hi, slow.ci_lo);  // the intervals really separate
  EXPECT_EQ(Objective::Compare(fast, slow), -1);
  EXPECT_EQ(Objective::Compare(slow, fast), 1);
}

TEST(TuningObjectiveTest, IdenticalDistributionsAreIndistinguishable) {
  Objective obj;
  const ArmScore a = obj.Score({Synthetic(7, 4000000, 500000, 430)});
  const ArmScore b = obj.Score({Synthetic(7, 4000000, 500000, 430)});
  EXPECT_EQ(a.score, b.score);
  EXPECT_EQ(Objective::Compare(a, b), 0);  // overlap -> no confident winner
}

TEST(TuningObjectiveTest, ThroughputFloorBeatsABetterTail) {
  Objective obj;
  obj.min_tps = 280;
  // The fast arm misses the floor; the slow arm meets it and must win.
  const ArmScore fast_starved = obj.Score({Synthetic(3, 2000000, 100000, 90)});
  const ArmScore slow_feasible =
      obj.Score({Synthetic(3, 25000000, 4000000, 430)});
  EXPECT_FALSE(fast_starved.feasible);
  EXPECT_TRUE(slow_feasible.feasible);
  EXPECT_EQ(Objective::Compare(slow_feasible, fast_starved), -1);
  EXPECT_EQ(Objective::Compare(fast_starved, slow_feasible), 1);
  // Two infeasible arms cannot be ranked.
  EXPECT_EQ(Objective::Compare(fast_starved, fast_starved), 0);
}

TEST(TuningObjectiveTest, CovGoalPrefersTheNarrowDistribution) {
  Objective obj;
  obj.goal = Goal::kMinCoV;
  // Same mean neighborhood, very different dispersion.
  const ArmScore narrow = obj.Score({Synthetic(5, 10000000, 200000, 430)});
  const ArmScore wide = obj.Score({Synthetic(5, 2000000, 30000000, 430)});
  EXPECT_LT(narrow.score, wide.score);
  EXPECT_EQ(Objective::Compare(narrow, wide), -1);
}

TEST(TuningObjectiveTest, EmptyReplicatesAreInfeasible) {
  const ArmScore empty = Objective{}.Score({});
  EXPECT_FALSE(empty.feasible);
  EXPECT_EQ(empty.samples, 0u);
  const ArmScore real = Objective{}.Score({Synthetic(1, 4000000, 500000, 430)});
  EXPECT_EQ(Objective::Compare(real, empty), -1);
}

// --- successive halving -----------------------------------------------------

// Deterministic measurement seam: eager flush draws a wide 30ms
// distribution, both lazy families draw the *same* tight 4ms stream (so
// they are genuinely indistinguishable and must both survive).
class SyntheticSource : public TrialSource {
 public:
  TrialMeasurement Measure(const KnobConfig& knobs, int replicate) override {
    ++trials_;
    const bool eager = knobs.flush_policy == log::FlushPolicy::kEagerFlush;
    const uint64_t seed = 1000 + static_cast<uint64_t>(replicate);
    return eager ? Synthetic(seed, 30000000, 8000000, 420)
                 : Synthetic(seed, 4000000, 500000, 430);
  }
  int trials() const { return trials_; }

 private:
  int trials_ = 0;
};

KnobSpace FlushSpace() {
  KnobSpace s;
  s.flush_policies = {log::FlushPolicy::kEagerFlush,
                      log::FlushPolicy::kLazyFlush,
                      log::FlushPolicy::kLazyWrite};
  return s;
}

TEST(TuningSearchTest, HalvingPrunesProvablyWorseArmKeepsOverlappingOnes) {
  SyntheticSource source;
  Objective obj;
  obj.min_tps = 300;
  SearchConfig search;  // 2 replicates, x2 per rung, eta 2, 3 rungs

  const TuneResult result =
      SuccessiveHalving(source, FlushSpace(), obj, search);
  ASSERT_EQ(result.arms.size(), 3u);

  // Arm 0 (eager) is confidently worse: pruned at the first rung.
  EXPECT_TRUE(result.arms[0].pruned);
  EXPECT_EQ(result.arms[0].rung_pruned, 0);
  // The two lazy arms share a distribution — neither can be pruned on a
  // separated interval, so both must survive every rung.
  EXPECT_FALSE(result.arms[1].pruned);
  EXPECT_FALSE(result.arms[2].pruned);
  EXPECT_TRUE(result.best == 1 || result.best == 2);
  EXPECT_NE(result.arms[result.best].knobs.flush_policy,
            log::FlushPolicy::kEagerFlush);

  // The budget concentrated on survivors: 2 replicates spent on the pruned
  // arm, the full 2 -> 4 -> 8 ladder on each survivor.
  EXPECT_EQ(result.arms[0].replicates.size(), 2u);
  EXPECT_EQ(result.arms[1].replicates.size(), 8u);
  EXPECT_EQ(result.arms[2].replicates.size(), 8u);
  EXPECT_EQ(source.trials(), 18);
  EXPECT_EQ(result.rungs_run, 3);
}

TEST(TuningSearchTest, SeededRunsProduceBitIdenticalReports) {
  Objective obj;
  obj.min_tps = 300;
  const SearchConfig search;
  const KnobSpace space = FlushSpace();

  SyntheticSource s1;
  const TuneResult r1 = SuccessiveHalving(s1, space, obj, search);
  SyntheticSource s2;
  const TuneResult r2 = SuccessiveHalving(s2, space, obj, search);

  const std::string d1 =
      TuneReport(r1, space, obj, "fig3-flush", true).Dump(/*pretty=*/true);
  const std::string d2 =
      TuneReport(r2, space, obj, "fig3-flush", true).Dump(/*pretty=*/true);
  EXPECT_EQ(d1, d2);
  EXPECT_NE(d1.find("\"recommendation\""), std::string::npos);
  EXPECT_EQ(RecommendationTable(r1, obj), RecommendationTable(r2, obj));
}

// --- knob materialization ---------------------------------------------------

TEST(TuningTrialTest, MaterializeAppliesMysqlKnobsOntoToolkitBase) {
  KnobConfig k;
  k.scheduler = lock::SchedulerPolicy::kVATS;
  k.buffer_pool_pages = 512;
  k.flush_policy = log::FlushPolicy::kLazyFlush;
  k.group_commit = true;
  const engine::EngineConfig cfg =
      MaterializeEngineConfig(k, TrialConfig{}, /*seed=*/99);
  EXPECT_EQ(cfg.mysql.lock.policy, lock::SchedulerPolicy::kVATS);
  EXPECT_EQ(cfg.mysql.buffer_pool_pages, 512u);
  EXPECT_EQ(cfg.mysql.flush_policy, log::FlushPolicy::kLazyFlush);
  EXPECT_TRUE(cfg.mysql.log_group_commit);
  EXPECT_EQ(cfg.mysql.seed, 99u);

  // Zero-valued size knobs keep the calibrated base.
  KnobConfig defaults;
  const engine::EngineConfig base =
      MaterializeEngineConfig(defaults, TrialConfig{}, 1);
  EXPECT_EQ(base.mysql.buffer_pool_pages,
            core::Toolkit::MysqlDefault(lock::SchedulerPolicy::kFCFS)
                .buffer_pool_pages);

  TrialConfig contended;
  contended.memory_contended = true;
  const engine::EngineConfig small =
      MaterializeEngineConfig(defaults, contended, 1);
  EXPECT_EQ(small.mysql.buffer_pool_pages,
            core::Toolkit::MysqlMemoryContended(lock::SchedulerPolicy::kFCFS)
                .buffer_pool_pages);
}

TEST(TuningTrialTest, MaterializeAppliesPgKnobsOntoToolkitBase) {
  KnobConfig k;
  k.engine = engine::EngineKind::kPgMini;
  k.scheduler = lock::SchedulerPolicy::kCATS;
  k.wal_block_bytes = 16384;
  k.num_log_sets = 2;
  const engine::EngineConfig cfg =
      MaterializeEngineConfig(k, TrialConfig{}, /*seed=*/7);
  EXPECT_EQ(cfg.pg.wal.block_bytes, 16384u);
  EXPECT_EQ(cfg.pg.wal.num_log_sets, 2);
  EXPECT_TRUE(cfg.pg.wal.parallel_logging);
  EXPECT_EQ(cfg.pg.lock.policy, lock::SchedulerPolicy::kCATS);
  EXPECT_EQ(cfg.pg.seed, 7u);
}

TEST(TuningTrialTest, MaterializeBuildsShardedTemplateFromMysqlKnobs) {
  KnobConfig k;
  k.scheduler = lock::SchedulerPolicy::kVATS;
  k.flush_policy = log::FlushPolicy::kLazyFlush;
  k.num_shards = 4;
  const engine::EngineConfig cfg =
      MaterializeEngineConfig(k, TrialConfig{}, /*seed=*/11);
  // Every mysql knob applies per shard: the template is the tuned config.
  EXPECT_EQ(cfg.sharded.num_shards, 4);
  EXPECT_EQ(cfg.sharded.shard.lock.policy, lock::SchedulerPolicy::kVATS);
  EXPECT_EQ(cfg.sharded.shard.flush_policy, log::FlushPolicy::kLazyFlush);
  EXPECT_EQ(cfg.sharded.shard.seed, 11u);

  // The partitioned arm survives the JSON round-trip, labels distinctly,
  // and rejects out-of-range or non-mysql partition counts.
  const auto rt = KnobConfig::FromJson(k.ToJson());
  ASSERT_TRUE(rt.ok()) << rt.status().ToString();
  EXPECT_EQ(rt.value().num_shards, 4);
  EXPECT_EQ(rt.value().Label(), k.Label());
  EXPECT_NE(k.Label(), KnobConfig().Label());

  json::Value too_many = KnobConfig().ToJson();
  too_many.Set("num_shards",
               json::Value::Int(engine::ShardRouter::kMaxShards + 1));
  EXPECT_FALSE(KnobConfig::FromJson(too_many).ok());
  json::Value pg_sharded = KnobConfig().ToJson();
  pg_sharded.Set("engine", json::Value::Str("pgmini"));
  pg_sharded.Set("num_shards", json::Value::Int(2));
  EXPECT_FALSE(KnobConfig::FromJson(pg_sharded).ok());
}

// --- the real runner --------------------------------------------------------

TEST(TuningTrialTest, TrialRunnerMeasuresARealService) {
  TrialConfig trial;
  trial.tps = 2000;
  trial.num_txns = 120;
  trial.warmup_txns = 0;
  trial.base_seed = 3;

  KnobConfig knobs;
  knobs.flush_policy = log::FlushPolicy::kLazyFlush;

  TrialRunner runner(trial);
  const TrialMeasurement m = runner.Measure(knobs, /*replicate=*/0);
  EXPECT_GT(m.latency.count, 0u);
  EXPECT_GT(m.committed, 0u);
  EXPECT_GT(m.achieved_tps, 0.0);
  // The delta carries the service counters for exactly this replicate.
  EXPECT_EQ(m.delta.counter("server.submitted"), 120u);
  EXPECT_EQ(m.delta.counter("tuning.trials_run"), 1u);
  EXPECT_EQ(m.delta.counter("server.completed") +
                m.delta.counter("server.expired") +
                m.delta.counter("server.drain_aborted"),
            m.delta.counter("server.admitted"));
}

}  // namespace
}  // namespace tdp::tuning
