#include "common/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

namespace tdp {
namespace {

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t v = rng.Uniform(17);
    EXPECT_LT(v, 17u);
  }
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  double sum = 0, sumsq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sumsq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sumsq / n, 1.0, 0.05);
}

TEST(RngTest, LogNormalIsPositiveAndSkewed) {
  Rng rng(19);
  double max_v = 0, sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.LogNormal(0.0, 0.5);
    ASSERT_GT(v, 0.0);
    max_v = std::max(max_v, v);
    sum += v;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, std::exp(0.125), 0.05);  // E = exp(mu + sigma^2/2)
  EXPECT_GT(max_v, 3 * mean);                // heavy right tail
}

TEST(RngTest, NURandWithinBounds) {
  Rng rng(23);
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.NURand(255, 0, 999);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 999);
  }
}

TEST(RngTest, NURandIsNonUniform) {
  Rng rng(29);
  std::map<int64_t, int> counts;
  for (int i = 0; i < 50000; ++i) counts[rng.NURand(255, 0, 999)]++;
  int max_count = 0;
  for (const auto& [k, c] : counts) max_count = std::max(max_count, c);
  // Uniform would put ~50 in each bucket; NURand concentrates mass.
  EXPECT_GT(max_count, 100);
}

TEST(ZipfTest, BoundsRespected) {
  Rng rng(31);
  ZipfGenerator zipf(1000, 0.99);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf.Next(&rng), 1000u);
}

TEST(ZipfTest, SkewIncreasesWithTheta) {
  Rng rng(37);
  auto head_mass = [&](double theta) {
    ZipfGenerator z(1000, theta);
    int head = 0;
    for (int i = 0; i < 30000; ++i) {
      if (z.Next(&rng) < 10) ++head;
    }
    return head;
  };
  const int low = head_mass(0.2);
  const int high = head_mass(0.99);
  EXPECT_GT(high, low * 2);
}

TEST(ZipfTest, SmallN) {
  Rng rng(41);
  ZipfGenerator z(1, 0.9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(z.Next(&rng), 0u);
}

}  // namespace
}  // namespace tdp
