// Parameterized properties across all four lock-scheduling policies:
// mutual exclusion with mixed S/X traffic, eventual completion under
// continuous arrivals (no starvation), and clean teardown.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/work.h"
#include "lock/lock_manager.h"

namespace tdp::lock {
namespace {

class LockPolicyPropertyTest
    : public ::testing::TestWithParam<SchedulerPolicy> {};

LockManagerConfig Config(SchedulerPolicy p) {
  LockManagerConfig cfg;
  cfg.policy = p;
  cfg.wait_timeout_ns = MillisToNanos(5000);
  return cfg;
}

// Readers observe a value pair kept consistent by writers under X locks;
// any torn read means S/X exclusion broke.
TEST_P(LockPolicyPropertyTest, ReadersNeverSeeTornWrites) {
  LockManager lm(Config(GetParam()));
  constexpr RecordId kRec{5, 5};
  int64_t a = 0, b = 0;  // invariant: a == b under the lock
  std::atomic<uint64_t> next_id{1};
  std::atomic<bool> torn{false};

  auto writer = [&] {
    for (int i = 0; i < 300; ++i) {
      const uint64_t id = next_id.fetch_add(1);
      TxnContext txn(id, id * 17);
      if (lm.Lock(&txn, kRec, LockMode::kX).ok()) {
        ++a;
        SpinFor(1500);
        ++b;
      }
      lm.ReleaseAll(&txn);
    }
  };
  auto reader = [&] {
    for (int i = 0; i < 300; ++i) {
      const uint64_t id = next_id.fetch_add(1);
      TxnContext txn(id, id * 17);
      if (lm.Lock(&txn, kRec, LockMode::kS).ok()) {
        if (a != b) torn.store(true);
      }
      lm.ReleaseAll(&txn);
    }
  };
  std::vector<std::thread> ts;
  for (int i = 0; i < 3; ++i) ts.emplace_back(writer);
  for (int i = 0; i < 3; ++i) ts.emplace_back(reader);
  for (auto& t : ts) t.join();
  EXPECT_FALSE(torn.load());
  EXPECT_EQ(a, 900);
  EXPECT_EQ(a, b);
}

// A single waiter must complete even while a stream of competitors keeps
// arriving — no policy may starve it (under VATS its age only grows; under
// CATS ties break eldest-first; RS priorities are fixed at birth).
TEST_P(LockPolicyPropertyTest, EarlyWaiterEventuallyCompletes) {
  LockManager lm(Config(GetParam()));
  constexpr RecordId kRec{6, 6};
  TxnContext holder(1);
  ASSERT_TRUE(lm.Lock(&holder, kRec, LockMode::kX).ok());

  std::atomic<bool> victim_done{false};
  TxnContext victim(2);
  std::thread tv([&] {
    EXPECT_TRUE(lm.Lock(&victim, kRec, LockMode::kX).ok());
    victim_done.store(true);
    lm.ReleaseAll(&victim);
  });
  while (lm.QueueDepths(kRec).second == 0) SpinFor(5000);

  // Competitors arrive continuously while the victim waits.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> next_id{10};
  std::thread competitors([&] {
    while (!stop.load()) {
      const uint64_t id = next_id.fetch_add(1);
      TxnContext txn(id, id * 23);
      (void)lm.Lock(&txn, kRec, LockMode::kX);
      SpinFor(2000);
      lm.ReleaseAll(&txn);
    }
  });
  SpinFor(MillisToNanos(5));
  lm.ReleaseAll(&holder);
  tv.join();
  EXPECT_TRUE(victim_done.load());
  stop.store(true);
  competitors.join();
}

TEST_P(LockPolicyPropertyTest, QueuesEmptyAfterQuiescence) {
  LockManager lm(Config(GetParam()));
  std::atomic<uint64_t> next_id{1};
  std::vector<std::thread> ts;
  for (int t = 0; t < 6; ++t) {
    ts.emplace_back([&, t] {
      Rng rng(t + 1);
      for (int i = 0; i < 150; ++i) {
        const uint64_t id = next_id.fetch_add(1);
        TxnContext txn(id, rng.Next());
        const int n = 1 + static_cast<int>(rng.Uniform(4));
        bool ok = true;
        for (int k = 0; k < n && ok; ++k) {
          // Ordered keys: no deadlocks, only queueing.
          ok = lm.Lock(&txn, {7, static_cast<uint64_t>(k)},
                       rng.Bernoulli(0.5) ? LockMode::kS : LockMode::kX)
                   .ok();
        }
        lm.ReleaseAll(&txn);
      }
    });
  }
  for (auto& t : ts) t.join();
  for (uint64_t k = 0; k < 4; ++k) {
    auto [granted, waiting] = lm.QueueDepths({7, k});
    EXPECT_EQ(granted, 0u) << "key " << k;
    EXPECT_EQ(waiting, 0u) << "key " << k;
  }
  EXPECT_EQ(lm.stats().timeouts.load(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, LockPolicyPropertyTest,
    ::testing::Values(SchedulerPolicy::kFCFS, SchedulerPolicy::kVATS,
                      SchedulerPolicy::kRS, SchedulerPolicy::kCATS),
    [](const ::testing::TestParamInfo<SchedulerPolicy>& info) {
      return SchedulerPolicyName(info.param);
    });

}  // namespace
}  // namespace tdp::lock
