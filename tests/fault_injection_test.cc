// FaultInjector units plus the retry/degraded paths it exercises in
// SimDisk, RedoLog, pg::WalManager and BufferPool (docs/faults.md).
#include "common/fault.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "buffer/buffer_pool.h"
#include "common/clock.h"
#include "common/sim_disk.h"
#include "log/redo_log.h"
#include "pg/wal.h"

namespace tdp {
namespace {

SimDiskConfig FastDisk(FaultInjector* fault) {
  SimDiskConfig cfg;
  cfg.base_latency_ns = 10000;  // 10 us
  cfg.sigma = 0.0;
  cfg.bytes_per_us = 0;  // no transfer term; timings are deterministic
  cfg.flush_barrier_ns = 5000;
  cfg.fault = fault;
  return cfg;
}

IoRetryPolicy QuickRetry() {
  IoRetryPolicy p;
  p.max_attempts = 3;
  p.backoff_ns = 20000;  // 20 us
  p.stall_deadline_ns = MillisToNanos(2);
  return p;
}

// --- injector units ---------------------------------------------------------

TEST(FaultInjectorTest, UnarmedIsNeutral) {
  FaultInjector inj;
  inj.AddStall(0, MillisToNanos(1000));
  inj.AddWriteError(0, MillisToNanos(1000));
  const auto p = inj.Evaluate(IoOp::kWrite, NowNanos());
  EXPECT_DOUBLE_EQ(p.latency_multiplier, 1.0);
  EXPECT_EQ(p.stall_until_ns, 0);
  EXPECT_FALSE(p.fail);
  EXPECT_EQ(inj.StallRemainingNanos(NowNanos()), 0);
}

TEST(FaultInjectorTest, EventsApplyOnlyInsideTheirWindow) {
  FaultInjector inj;
  inj.AddLatencySpike(0, MillisToNanos(50), 8.0);
  inj.Arm();
  const auto inside = inj.Evaluate(IoOp::kRead, NowNanos());
  EXPECT_DOUBLE_EQ(inside.latency_multiplier, 8.0);
  const auto after =
      inj.Evaluate(IoOp::kRead, NowNanos() + MillisToNanos(60));
  EXPECT_DOUBLE_EQ(after.latency_multiplier, 1.0);
  EXPECT_GE(inj.stats().spikes.load(), 1u);
}

TEST(FaultInjectorTest, WriteErrorsSpareReads) {
  FaultInjector inj;
  inj.AddWriteError(0, MillisToNanos(1000), 1.0);
  inj.Arm();
  EXPECT_TRUE(inj.Evaluate(IoOp::kWrite, NowNanos()).fail);
  EXPECT_TRUE(inj.Evaluate(IoOp::kFlush, NowNanos()).fail);
  EXPECT_FALSE(inj.Evaluate(IoOp::kRead, NowNanos()).fail);
}

TEST(FaultInjectorTest, TornFlushOnlyAffectsFlushes) {
  FaultInjector inj;
  inj.AddTornFlush(0, MillisToNanos(1000), 0.25);
  inj.Arm();
  const auto f = inj.Evaluate(IoOp::kFlush, NowNanos());
  EXPECT_TRUE(f.fail);
  EXPECT_DOUBLE_EQ(f.written_fraction, 0.25);
  EXPECT_FALSE(inj.Evaluate(IoOp::kWrite, NowNanos()).fail);
}

TEST(FaultInjectorTest, StallRemainingCountsDown) {
  FaultInjector inj;
  inj.AddStall(0, MillisToNanos(100));
  inj.Arm();
  const int64_t now = NowNanos();
  const int64_t rem = inj.StallRemainingNanos(now);
  EXPECT_GT(rem, 0);
  EXPECT_LE(rem, MillisToNanos(100));
  EXPECT_EQ(inj.StallRemainingNanos(now + MillisToNanos(200)), 0);
}

TEST(FaultInjectorTest, RandomScheduleIsDeterministicAndBounded) {
  RandomFaultConfig cfg;
  cfg.horizon_ns = MillisToNanos(500);
  cfg.mean_gap_ns = MillisToNanos(10);
  const auto a = FaultInjector::RandomSchedule(1234, cfg);
  const auto b = FaultInjector::RandomSchedule(1234, cfg);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].start_ns, b[i].start_ns);
    EXPECT_EQ(a[i].duration_ns, b[i].duration_ns);
    EXPECT_LT(a[i].start_ns, cfg.horizon_ns);
    EXPECT_GE(a[i].duration_ns, cfg.min_duration_ns);
    EXPECT_LE(a[i].duration_ns, cfg.max_duration_ns);
  }
  const auto c = FaultInjector::RandomSchedule(99, cfg);
  ASSERT_FALSE(c.empty());
  EXPECT_TRUE(a.size() != c.size() || a[0].start_ns != c[0].start_ns)
      << "different seeds should produce different schedules";
}

TEST(FaultInjectorTest, RandomScheduleRespectsWeights) {
  RandomFaultConfig cfg;
  cfg.horizon_ns = MillisToNanos(500);
  cfg.mean_gap_ns = MillisToNanos(5);
  cfg.weight_stall = 0;
  cfg.weight_write_error = 0;
  cfg.weight_torn_flush = 0;
  for (const FaultEvent& e : FaultInjector::RandomSchedule(7, cfg)) {
    EXPECT_EQ(e.kind, FaultKind::kLatencySpike);
  }
}

// --- RetryIo ----------------------------------------------------------------

TEST(RetryIoTest, RetriesIoErrorsUntilSuccess) {
  int calls = 0;
  int attempts = 0;
  Status s = RetryIo(
      QuickRetry(),
      [&]() -> Status {
        return ++calls < 3 ? Status::IOError("flaky") : Status::OK();
      },
      &attempts);
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(attempts, 3);
}

TEST(RetryIoTest, GivesUpAfterMaxAttempts) {
  int attempts = 0;
  Status s = RetryIo(
      QuickRetry(), [] { return Status::IOError("dead"); }, &attempts);
  EXPECT_EQ(s.code(), Code::kIOError);
  EXPECT_EQ(attempts, 3);
}

TEST(RetryIoTest, NonIoErrorsReturnImmediately) {
  int attempts = 0;
  Status s = RetryIo(
      QuickRetry(), [] { return Status::Busy("not io"); }, &attempts);
  EXPECT_TRUE(s.IsBusy());
  EXPECT_EQ(attempts, 1);
}

// --- backoff schedule -------------------------------------------------------

TEST(BackoffTest, NoJitterDoublesUpToCap) {
  IoRetryPolicy p;
  p.jitter = false;
  p.backoff_ns = 100;
  p.max_backoff_ns = 1500;
  Rng rng(1);
  int64_t prev = 0;
  int64_t expect[] = {100, 200, 400, 800, 1500, 1500};
  for (int64_t e : expect) {
    prev = NextBackoffNanos(p, prev, &rng);
    EXPECT_EQ(prev, e);
  }
}

TEST(BackoffTest, DecorrelatedJitterIsSeedDeterministicAndBounded) {
  IoRetryPolicy p;
  p.backoff_ns = 1000;
  p.max_backoff_ns = 50000;
  ASSERT_TRUE(p.jitter);  // the default
  // Same seed -> same schedule (the property RetryIo's per-thread Rng
  // relies on for reproducible single-threaded tests).
  Rng a(42), b(42);
  int64_t prev_a = 0, prev_b = 0;
  for (int i = 0; i < 64; ++i) {
    const int64_t next_a = NextBackoffNanos(p, prev_a, &a);
    const int64_t next_b = NextBackoffNanos(p, prev_b, &b);
    EXPECT_EQ(next_a, next_b);
    // Decorrelated-jitter bounds: [base, 3 * max(prev, base)], capped.
    EXPECT_GE(next_a, p.backoff_ns);
    const int64_t anchor = prev_a > p.backoff_ns ? prev_a : p.backoff_ns;
    EXPECT_LE(next_a, std::min<int64_t>(3 * anchor, p.max_backoff_ns));
    prev_a = next_a;
    prev_b = next_b;
  }
  // Different seeds decorrelate (some draw must differ over 64 steps).
  Rng c(7);
  int64_t prev_c = 0;
  bool diverged = false;
  Rng a2(42);
  int64_t prev_a2 = 0;
  for (int i = 0; i < 64 && !diverged; ++i) {
    prev_a2 = NextBackoffNanos(p, prev_a2, &a2);
    prev_c = NextBackoffNanos(p, prev_c, &c);
    diverged = prev_a2 != prev_c;
  }
  EXPECT_TRUE(diverged);
}

TEST(BackoffTest, ZeroBaseMeansNoSleep) {
  IoRetryPolicy p;
  p.backoff_ns = 0;
  Rng rng(3);
  EXPECT_EQ(NextBackoffNanos(p, 0, &rng), 0);
}

// --- SimDisk integration ----------------------------------------------------

TEST(SimDiskFaultTest, WriteErrorWindowFailsWritesNotReads) {
  FaultInjector inj;
  inj.AddWriteError(0, MillisToNanos(2000), 1.0);
  SimDisk disk(FastDisk(&inj));
  inj.Arm();
  EXPECT_EQ(disk.Write(100).code(), Code::kIOError);
  EXPECT_TRUE(disk.Read(100).ok());
  EXPECT_GE(disk.stats().io_errors.load(), 1u);
  inj.Disarm();
  EXPECT_TRUE(disk.Write(100).ok());
}

TEST(SimDiskFaultTest, LatencySpikeMultipliesServiceTime) {
  FaultInjector inj;
  inj.AddLatencySpike(0, MillisToNanos(2000), 10.0);
  SimDiskConfig cfg = FastDisk(&inj);
  cfg.base_latency_ns = MillisToNanos(2);
  SimDisk disk(cfg);
  inj.Arm();
  const int64_t t0 = NowNanos();
  ASSERT_TRUE(disk.Write(0).ok());
  // 2 ms base x10 spike: sleep_for guarantees at least the requested time.
  EXPECT_GT(NowNanos() - t0, MillisToNanos(15));
}

TEST(SimDiskFaultTest, TornFlushDropsPartOfThePayload) {
  FaultInjector inj;
  inj.AddTornFlush(0, MillisToNanos(2000), 0.25);
  SimDisk disk(FastDisk(&inj));
  inj.Arm();
  EXPECT_EQ(disk.Flush(1000).code(), Code::kIOError);
  EXPECT_EQ(disk.stats().bytes.load(), 250u);
  EXPECT_EQ(disk.stats().bytes_lost.load(), 750u);
}

TEST(SimDiskFaultTest, StallFreezesRequestsUntilWindowEnd) {
  FaultInjector inj;
  inj.AddStall(0, MillisToNanos(40));
  SimDisk disk(FastDisk(&inj));
  inj.Arm();
  EXPECT_GT(disk.StallRemainingNanos(), 0);
  const int64_t t0 = NowNanos();
  ASSERT_TRUE(disk.Write(0).ok());
  // Issued inside the stall window: must not complete before it ends.
  EXPECT_GT(NowNanos() - t0, MillisToNanos(30));
}

// --- RedoLog ----------------------------------------------------------------

TEST(RedoLogFaultTest, StrictEagerCommitRetriesUntilDurable) {
  FaultInjector inj;
  inj.AddWriteError(0, MillisToNanos(30), 1.0);
  SimDisk disk(FastDisk(&inj));
  log::RedoLogConfig cfg;
  cfg.policy = log::FlushPolicy::kEagerFlush;
  cfg.disk = &disk;
  cfg.io_retry = QuickRetry();
  log::RedoLog rlog(cfg);
  rlog.Start();
  inj.Arm();
  const uint64_t lsn = rlog.Commit(1, 256);
  // Strict mode: Commit only returns once the record is durable, however
  // many retry rounds the 30 ms error window cost.
  EXPECT_GE(rlog.durable_lsn(), lsn);
  EXPECT_GE(rlog.stats().io_retries.load(), 1u);
  EXPECT_EQ(rlog.stats().degraded_commits.load(), 0u);
  rlog.Stop();
}

TEST(RedoLogFaultTest, FallbackDegradesCommitDuringStall) {
  FaultInjector inj;
  inj.AddStall(0, MillisToNanos(150));
  SimDisk disk(FastDisk(&inj));
  log::RedoLogConfig cfg;
  cfg.policy = log::FlushPolicy::kEagerFlush;
  cfg.disk = &disk;
  cfg.io_retry = QuickRetry();  // 2 ms stall deadline
  cfg.fallback_lazy_on_stall = true;
  cfg.flusher_interval_ns = MillisToNanos(5);
  log::RedoLog rlog(cfg);
  rlog.Start();
  inj.Arm();
  const int64_t t0 = NowNanos();
  const uint64_t lsn = rlog.Commit(1, 256);
  // The commit must return well before the 150 ms stall clears...
  EXPECT_LT(NowNanos() - t0, MillisToNanos(100));
  EXPECT_LT(rlog.durable_lsn(), lsn);
  EXPECT_GE(rlog.stats().degraded_commits.load(), 1u);
  // ...and the background flusher completes durability once it does.
  const int64_t deadline = NowNanos() + MillisToNanos(3000);
  while (rlog.durable_lsn() < lsn && NowNanos() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(rlog.durable_lsn(), lsn);
  rlog.Stop();
}

// --- pg WAL -----------------------------------------------------------------

TEST(WalFaultTest, StrictCommitBlocksThroughErrorWindow) {
  FaultInjector inj;
  inj.AddWriteError(0, MillisToNanos(30), 1.0);
  pg::WalConfig cfg;
  cfg.disk = FastDisk(&inj);
  cfg.io_retry = QuickRetry();
  pg::WalManager wal(cfg);
  inj.Arm();
  EXPECT_TRUE(wal.CommitFlush(4096).ok());
  EXPECT_GE(wal.stats().io_retries.load(), 1u);
  EXPECT_EQ(wal.stats().degraded_commits.load(), 0u);
}

TEST(WalFaultTest, DegradedCommitGivesUpOnPersistentErrors) {
  FaultInjector inj;
  inj.AddWriteError(0, MillisToNanos(5000), 1.0);
  pg::WalConfig cfg;
  cfg.disk = FastDisk(&inj);
  cfg.io_retry = QuickRetry();
  cfg.degrade_on_stall = true;
  pg::WalManager wal(cfg);
  inj.Arm();
  EXPECT_EQ(wal.CommitFlush(4096).code(), Code::kIOError);
  EXPECT_GE(wal.stats().degraded_commits.load(), 1u);
}

TEST(WalFaultTest, DegradedCommitSkipsFlushDuringStall) {
  FaultInjector inj;
  inj.AddStall(0, MillisToNanos(150));
  pg::WalConfig cfg;
  cfg.disk = FastDisk(&inj);
  cfg.io_retry = QuickRetry();  // 2 ms stall deadline
  cfg.degrade_on_stall = true;
  pg::WalManager wal(cfg);
  inj.Arm();
  const int64_t t0 = NowNanos();
  EXPECT_TRUE(wal.CommitFlush(4096).IsBusy());
  EXPECT_LT(NowNanos() - t0, MillisToNanos(100));
  EXPECT_GE(wal.stats().degraded_commits.load(), 1u);
}

// --- buffer pool ------------------------------------------------------------

TEST(BufferPoolFaultTest, WritebackFailureIsCountedNotFatal) {
  FaultInjector inj;
  inj.AddWriteError(0, MillisToNanos(5000), 1.0);
  SimDisk disk(FastDisk(&inj));
  buffer::BufferPoolConfig cfg;
  cfg.capacity_pages = 2;
  cfg.disk = &disk;
  cfg.io_retry = QuickRetry();
  buffer::BufferPool pool(cfg);
  inj.Arm();
  ASSERT_TRUE(pool.Fetch({1, 1}).ok());
  pool.MarkDirty({1, 1});
  pool.Unpin({1, 1});
  ASSERT_TRUE(pool.Fetch({1, 2}).ok());
  pool.Unpin({1, 2});
  // Third page forces the dirty page out; its writeback fails past the
  // retry budget but the fetch itself (a read) still succeeds.
  EXPECT_TRUE(pool.Fetch({1, 3}).ok());
  pool.Unpin({1, 3});
  EXPECT_GE(pool.stats().writeback_failures.load(), 1u);
  EXPECT_GE(pool.stats().io_retries.load(), 1u);
}

TEST(BufferPoolFaultTest, FailedReadUnpublishesTheFrame) {
  FaultInjector inj;
  inj.AddReadError(0, MillisToNanos(5000), 1.0);
  SimDisk disk(FastDisk(&inj));
  buffer::BufferPoolConfig cfg;
  cfg.capacity_pages = 8;
  cfg.disk = &disk;
  cfg.io_retry = QuickRetry();
  buffer::BufferPool pool(cfg);
  inj.Arm();
  EXPECT_EQ(pool.Fetch({1, 1}).code(), Code::kIOError);
  EXPECT_EQ(pool.resident_pages(), 0u);
  EXPECT_GE(pool.stats().read_failures.load(), 1u);
  // Once the device recovers the same page id fetches cleanly — the failed
  // frame left no residue in the hash table.
  inj.Disarm();
  EXPECT_TRUE(pool.Fetch({1, 1}).ok());
  pool.Unpin({1, 1});
  EXPECT_EQ(pool.resident_pages(), 1u);
}

}  // namespace
}  // namespace tdp
