#include <gtest/gtest.h>

#include <algorithm>

#include "common/clock.h"
#include "common/work.h"

namespace tdp {
namespace {

TEST(ClockTest, NowNanosMonotonic) {
  int64_t prev = NowNanos();
  for (int i = 0; i < 1000; ++i) {
    const int64_t now = NowNanos();
    EXPECT_GE(now, prev);
    prev = now;
  }
}

TEST(ClockTest, UnitConversions) {
  EXPECT_EQ(MicrosToNanos(3), 3000);
  EXPECT_EQ(MillisToNanos(2), 2000000);
  EXPECT_DOUBLE_EQ(NanosToMicros(1500), 1.5);
  EXPECT_DOUBLE_EQ(NanosToMillis(2500000), 2.5);
  EXPECT_DOUBLE_EQ(NanosToSeconds(1500000000), 1.5);
}

TEST(WorkTest, SpinForZeroOrNegativeReturnsImmediately) {
  const int64_t t0 = NowNanos();
  SpinFor(0);
  SpinFor(-100);
  EXPECT_LT(NowNanos() - t0, MillisToNanos(5));
}

TEST(WorkTest, SpinForLastsAtLeastRequested) {
  for (int64_t target : {50000, 500000, 2000000}) {
    const int64_t t0 = NowNanos();
    SpinFor(target);
    EXPECT_GE(NowNanos() - t0, target);
  }
}

TEST(WorkTest, SpinForReasonablyAccurate) {
  // Min-of-3 guards against preemption; the spin should not overshoot the
  // target by a large factor when uncontended.
  int64_t best = INT64_MAX;
  for (int i = 0; i < 3; ++i) {
    const int64_t t0 = NowNanos();
    SpinFor(1000000);
    best = std::min(best, NowNanos() - t0);
  }
  EXPECT_LT(best, 3000000);
}

TEST(WorkTest, BurnIterationsDeterministic) {
  EXPECT_EQ(BurnIterations(1000), BurnIterations(1000));
  EXPECT_NE(BurnIterations(1000), BurnIterations(1001));
  EXPECT_NE(BurnIterations(0), 0u);  // seed value, not zero
}

}  // namespace
}  // namespace tdp
