// Parameterized property sweep over buffer-pool configurations: capacity is
// never exceeded (beyond pinned overshoot), the sublists partition the
// resident set, the old-ratio target is approximately maintained, and LLU
// preserves all of it.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "buffer/buffer_pool.h"
#include "common/random.h"

namespace tdp::buffer {
namespace {

struct PoolSpec {
  size_t capacity;
  double old_ratio;
  bool lazy;
  uint64_t keyspace;
  int threads;
};

class LruPropertyTest : public ::testing::TestWithParam<PoolSpec> {};

TEST_P(LruPropertyTest, InvariantsUnderRandomWorkload) {
  const PoolSpec& spec = GetParam();
  BufferPoolConfig cfg;
  cfg.capacity_pages = spec.capacity;
  cfg.old_ratio = spec.old_ratio;
  cfg.lazy_lru = spec.lazy;
  cfg.llu_spin_budget_ns = 2000;
  BufferPool pool(cfg);

  std::vector<std::thread> ts;
  for (int t = 0; t < spec.threads; ++t) {
    ts.emplace_back([&, t] {
      Rng rng(t * 7 + 1);
      for (int i = 0; i < 4000; ++i) {
        const PageId id{1, rng.Uniform(spec.keyspace)};
        ASSERT_TRUE(pool.Fetch(id).ok());
        if (rng.Bernoulli(0.2)) pool.MarkDirty(id);
        pool.Unpin(id);
      }
    });
  }
  for (auto& th : ts) th.join();

  // Capacity: bounded overshoot (at most one in-flight page per thread).
  EXPECT_LE(pool.resident_pages(),
            spec.capacity + static_cast<size_t>(spec.threads));

  // Sublists partition the resident set.
  auto [young, old] = pool.SublistLengths();
  EXPECT_EQ(young + old, pool.resident_pages());

  // Old-ratio target (only meaningful when the pool is full).
  if (spec.keyspace > spec.capacity) {
    const double target =
        spec.old_ratio * static_cast<double>(pool.resident_pages());
    EXPECT_NEAR(static_cast<double>(old), target, target * 0.25 + 3);
  }

  // Accounting: every access was a hit or a miss.
  const auto& st = pool.stats();
  EXPECT_EQ(st.hits.load() + st.misses.load(),
            static_cast<uint64_t>(spec.threads) * 4000u);
  // Evictions can't exceed misses.
  EXPECT_LE(st.evictions.load(), st.misses.load());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LruPropertyTest,
    ::testing::Values(
        PoolSpec{16, 3.0 / 8.0, false, 64, 4},
        PoolSpec{16, 3.0 / 8.0, true, 64, 4},
        PoolSpec{128, 3.0 / 8.0, false, 96, 4},   // mostly-cached
        PoolSpec{128, 3.0 / 8.0, true, 512, 8},   // heavy eviction
        PoolSpec{64, 0.5, false, 256, 4},          // different old ratio
        PoolSpec{64, 0.125, true, 256, 4},
        PoolSpec{1, 3.0 / 8.0, false, 32, 2}),     // degenerate capacity
    [](const ::testing::TestParamInfo<PoolSpec>& info) {
      const PoolSpec& s = info.param;
      return "cap" + std::to_string(s.capacity) + (s.lazy ? "_llu" : "_mtx") +
             "_keys" + std::to_string(s.keyspace) + "_thr" +
             std::to_string(s.threads) + "_ratio" +
             std::to_string(static_cast<int>(s.old_ratio * 1000));
    });

}  // namespace
}  // namespace tdp::buffer
