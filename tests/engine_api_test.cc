// The unified engine-facing API: OpenDatabase config validation, RunTxn
// retry semantics, Connection::last_error(), and idempotent Rollback().
#include "engine/factory.h"

#include <gtest/gtest.h>

#include "engine/txn.h"

namespace tdp::engine {
namespace {

EngineConfig FastMysql() {
  EngineConfig config;
  config.mysql.row_work_ns = 0;
  config.mysql.btree.level_work_ns = 0;
  config.mysql.data_disk.base_latency_ns = 0;
  config.mysql.data_disk.sigma = 0;
  config.mysql.log_disk.base_latency_ns = 0;
  config.mysql.log_disk.sigma = 0;
  config.mysql.log_disk.flush_barrier_ns = 0;
  return config;
}

EngineConfig FastPg() {
  EngineConfig config;
  config.pg.row_work_ns = 0;
  config.pg.wal.disk.base_latency_ns = 0;
  config.pg.wal.disk.sigma = 0;
  config.pg.wal.disk.flush_barrier_ns = 0;
  return config;
}

TEST(EngineFactoryTest, ParseEngineKindRoundTrips) {
  Result<EngineKind> kind = ParseEngineKind("mysqlmini");
  ASSERT_TRUE(kind.ok());
  EXPECT_EQ(*kind, EngineKind::kMySQLMini);
  EXPECT_STREQ(EngineKindName(*kind), "mysqlmini");
  kind = ParseEngineKind("pgmini");
  ASSERT_TRUE(kind.ok());
  EXPECT_EQ(*kind, EngineKind::kPgMini);
  EXPECT_STREQ(EngineKindName(*kind), "pgmini");
  EXPECT_TRUE(ParseEngineKind("oracle").status().IsInvalidArgument());
  EXPECT_TRUE(ParseEngineKind("").status().IsInvalidArgument());
}

TEST(EngineFactoryTest, OpensWorkingDatabases) {
  for (EngineKind kind : {EngineKind::kMySQLMini, EngineKind::kPgMini}) {
    auto db = OpenDatabase(
        kind, kind == EngineKind::kMySQLMini ? FastMysql() : FastPg());
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    const uint32_t t = (*db)->CreateTable("t", 16);
    (*db)->BulkUpsert(t, 1, storage::Row{5});
    auto conn = (*db)->Connect();
    ASSERT_TRUE(conn->Begin().ok());
    ASSERT_TRUE(conn->Select(t, 1).ok());
    Result<int64_t> v = conn->ReadColumn(t, 1, 0);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, 5);
    ASSERT_TRUE(conn->Commit().ok());
  }
}

TEST(EngineFactoryTest, RejectsZeroBufferPool) {
  EngineConfig config = FastMysql();
  config.mysql.buffer_pool_pages = 0;
  auto db = OpenDatabase(EngineKind::kMySQLMini, config);
  ASSERT_FALSE(db.ok());
  EXPECT_TRUE(db.status().IsInvalidArgument()) << db.status().ToString();
  EXPECT_NE(db.status().message().find("buffer_pool_pages"),
            std::string::npos);
}

TEST(EngineFactoryTest, RejectsNegativeSpinBudget) {
  EngineConfig config = FastMysql();
  config.mysql.llu_spin_budget_ns = -1;
  auto db = OpenDatabase(EngineKind::kMySQLMini, config);
  ASSERT_FALSE(db.ok());
  EXPECT_TRUE(db.status().IsInvalidArgument());
}

TEST(EngineFactoryTest, RejectsBadLockAndDiskConfigs) {
  {
    EngineConfig config = FastMysql();
    config.mysql.lock.wait_timeout_ns = 0;
    EXPECT_TRUE(OpenDatabase(EngineKind::kMySQLMini, config)
                    .status()
                    .IsInvalidArgument());
  }
  {
    EngineConfig config = FastMysql();
    config.mysql.data_disk.base_latency_ns = -5;
    EXPECT_TRUE(OpenDatabase(EngineKind::kMySQLMini, config)
                    .status()
                    .IsInvalidArgument());
  }
  {
    EngineConfig config = FastPg();
    config.pg.wal.block_bytes = 0;
    EXPECT_TRUE(
        OpenDatabase(EngineKind::kPgMini, config).status().IsInvalidArgument());
  }
  {
    EngineConfig config = FastPg();
    config.pg.wal.num_log_sets = 0;
    EXPECT_TRUE(
        OpenDatabase(EngineKind::kPgMini, config).status().IsInvalidArgument());
  }
}

TEST(EngineFactoryTest, ValidateAloneReportsTheField) {
  EngineConfig config = FastMysql();
  config.mysql.rows_per_page = 0;
  const Status s = ValidateEngineConfig(EngineKind::kMySQLMini, config);
  ASSERT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("rows_per_page"), std::string::npos);
}

// --- last_error + idempotent Rollback across engines -----------------------

void ExerciseConnectionContract(Database* db) {
  const uint32_t t = db->CreateTable("contract", 16);
  db->BulkUpsert(t, 1, storage::Row{10});
  auto conn = db->Connect();

  // Begin resets last_error; a failing read records it.
  ASSERT_TRUE(conn->Begin().ok());
  EXPECT_TRUE(conn->last_error().ok());
  EXPECT_TRUE(conn->ReadColumn(t, 999, 0).status().IsNotFound());
  EXPECT_TRUE(conn->last_error().IsNotFound()) << db->name();
  conn->Rollback();

  // Rollback is idempotent: back-to-back rollbacks and a rollback with no
  // open transaction are harmless no-ops.
  conn->Rollback();
  conn->Rollback();

  // A fresh Begin clears the sticky error and the connection still works.
  ASSERT_TRUE(conn->Begin().ok());
  EXPECT_TRUE(conn->last_error().ok());
  ASSERT_TRUE(conn->Update(t, 1, 0, 5).ok());
  ASSERT_TRUE(conn->Commit().ok());
  ASSERT_TRUE(conn->Begin().ok());
  ASSERT_TRUE(conn->Select(t, 1).ok());
  Result<int64_t> v = conn->ReadColumn(t, 1, 0);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 15);
  ASSERT_TRUE(conn->Commit().ok());
}

TEST(ConnectionContractTest, MysqlLastErrorAndIdempotentRollback) {
  auto db = OpenDatabase(EngineKind::kMySQLMini, FastMysql());
  ASSERT_TRUE(db.ok());
  ExerciseConnectionContract(db->get());
}

TEST(ConnectionContractTest, PgLastErrorAndIdempotentRollback) {
  auto db = OpenDatabase(EngineKind::kPgMini, FastPg());
  ASSERT_TRUE(db.ok());
  ExerciseConnectionContract(db->get());
}

// --- RunTxn ----------------------------------------------------------------

TEST(RunTxnTest, CommitsAndReportsSingleAttempt) {
  auto db = OpenDatabase(EngineKind::kMySQLMini, FastMysql());
  ASSERT_TRUE(db.ok());
  const uint32_t t = (*db)->CreateTable("t", 16);
  (*db)->BulkUpsert(t, 1, storage::Row{0});
  auto conn = (*db)->Connect();
  TxnStats stats;
  const Status s = RunTxn(
      *conn, RetryPolicy{},
      [&](Connection& c) { return c.Update(t, 1, 0, 3); }, &stats);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(stats.attempts, 1);
}

TEST(RunTxnTest, NonRetryableErrorRollsBackAndReturns) {
  auto db = OpenDatabase(EngineKind::kMySQLMini, FastMysql());
  ASSERT_TRUE(db.ok());
  const uint32_t t = (*db)->CreateTable("t", 16);
  (*db)->BulkUpsert(t, 1, storage::Row{0});
  auto conn = (*db)->Connect();
  int calls = 0;
  const Status s = RunTxn(*conn, RetryPolicy{}, [&](Connection& c) {
    ++calls;
    Status st = c.Update(t, 1, 0, 1);  // would commit if body succeeded
    if (!st.ok()) return st;
    return Status::NotFound("business rule");
  });
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(calls, 1);
  // The failed body's update was rolled back.
  ASSERT_TRUE(conn->Begin().ok());
  ASSERT_TRUE(conn->Select(t, 1).ok());
  EXPECT_EQ(*conn->ReadColumn(t, 1, 0), 0);
  ASSERT_TRUE(conn->Commit().ok());
}

TEST(RunTxnTest, RetriesUpToMaxAttemptsOnRetryableError) {
  auto db = OpenDatabase(EngineKind::kMySQLMini, FastMysql());
  ASSERT_TRUE(db.ok());
  auto conn = (*db)->Connect();
  RetryPolicy policy;
  policy.max_attempts = 3;
  int calls = 0;
  TxnStats stats;
  const Status s = RunTxn(
      *conn, policy,
      [&](Connection&) {
        ++calls;
        return Status::Deadlock("synthetic");
      },
      &stats);
  EXPECT_TRUE(s.IsDeadlock());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(stats.attempts, 3);
  EXPECT_EQ(stats.deadlock_aborts, 3u);
}

TEST(RunTxnTest, RetryStopsWhenErrorNotRetryable) {
  auto db = OpenDatabase(EngineKind::kMySQLMini, FastMysql());
  ASSERT_TRUE(db.ok());
  auto conn = (*db)->Connect();
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.retry_aborted = false;
  int calls = 0;
  const Status s = RunTxn(*conn, policy, [&](Connection&) {
    ++calls;
    return Status::Aborted("no retry wanted");
  });
  EXPECT_TRUE(s.IsAborted());
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace tdp::engine
