#include "pg/wal.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/clock.h"

namespace tdp::pg {
namespace {

WalConfig FastWal(bool parallel, uint64_t block = 4096) {
  WalConfig cfg;
  cfg.block_bytes = block;
  cfg.parallel_logging = parallel;
  cfg.disk.base_latency_ns = 20000;
  cfg.disk.sigma = 0;
  cfg.disk.flush_barrier_ns = 10000;
  return cfg;
}

TEST(WalTest, BlockRounding) {
  WalManager wal(FastWal(false, 4096));
  wal.CommitFlush(1);      // 1 block
  wal.CommitFlush(4096);   // 1 block
  wal.CommitFlush(4097);   // 2 blocks
  wal.CommitFlush(0);      // still writes 1 block (header)
  EXPECT_EQ(wal.stats().blocks_written.load(), 5u);
  EXPECT_EQ(wal.stats().commits.load(), 4u);
}

TEST(WalTest, SingleModeNeverUsesSecondLog) {
  WalManager wal(FastWal(false));
  std::vector<std::thread> ts;
  for (int i = 0; i < 4; ++i) {
    ts.emplace_back([&] {
      for (int j = 0; j < 10; ++j) wal.CommitFlush(512);
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(wal.stats().second_log_used.load(), 0u);
}

TEST(WalTest, ParallelModeSpreadsLoad) {
  WalConfig cfg = FastWal(true);
  cfg.disk.base_latency_ns = 200000;  // slow: force overlap
  WalManager wal(cfg);
  std::vector<std::thread> ts;
  for (int i = 0; i < 8; ++i) {
    ts.emplace_back([&] {
      for (int j = 0; j < 5; ++j) wal.CommitFlush(512);
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_GT(wal.stats().second_log_used.load(), 0u);
}

TEST(WalTest, ParallelModeFasterUnderContention) {
  auto timed_run = [&](bool parallel) {
    WalConfig cfg = FastWal(parallel);
    cfg.disk.base_latency_ns = 150000;
    WalManager wal(cfg);
    const int64_t t0 = NowNanos();
    std::vector<std::thread> ts;
    for (int i = 0; i < 6; ++i) {
      ts.emplace_back([&] {
        for (int j = 0; j < 6; ++j) wal.CommitFlush(512);
      });
    }
    for (auto& t : ts) t.join();
    return NowNanos() - t0;
  };
  const int64_t serial = timed_run(false);
  const int64_t parallel = timed_run(true);
  EXPECT_LT(parallel, serial);  // two disks beat one under contention
}

TEST(WalTest, NumLogSetsHonored) {
  WalConfig cfg = FastWal(false);
  cfg.num_log_sets = 4;
  WalManager wal(cfg);
  EXPECT_EQ(wal.num_log_sets(), 4);
  // parallel_logging flag still implies at least two sets.
  WalConfig two = FastWal(true);
  two.num_log_sets = 1;
  EXPECT_EQ(WalManager(two).num_log_sets(), 2);
  // And the single-set default stays serial.
  EXPECT_EQ(WalManager(FastWal(false)).num_log_sets(), 1);
}

TEST(WalTest, FourWayLoggingSpreadsFurther) {
  auto timed_run = [&](int sets) {
    WalConfig cfg = FastWal(false);
    cfg.num_log_sets = sets;
    cfg.disk.base_latency_ns = 150000;
    WalManager wal(cfg);
    const int64_t t0 = NowNanos();
    std::vector<std::thread> ts;
    for (int i = 0; i < 8; ++i) {
      ts.emplace_back([&] {
        for (int j = 0; j < 4; ++j) wal.CommitFlush(512);
      });
    }
    for (auto& t : ts) t.join();
    return NowNanos() - t0;
  };
  const int64_t one = timed_run(1);
  const int64_t four = timed_run(4);
  EXPECT_LT(four, one);
}

TEST(WalTest, ZeroBlockBytesDefaulted) {
  WalConfig cfg = FastWal(false);
  cfg.block_bytes = 0;
  WalManager wal(cfg);
  EXPECT_EQ(wal.block_bytes(), 8192u);
}

}  // namespace
}  // namespace tdp::pg
