// Fuzzy checkpoints (docs/recovery.md): encode/decode roundtrip with CRC
// protection, the two-slot store's torn-write fallback, restore semantics
// (deletions after the snapshot must not survive), and checkpoint + log
// suffix replay agreeing with full replay.
#include "engine/recovery.h"

#include <gtest/gtest.h>

#include <vector>

#include "log/log_codec.h"
#include "storage/catalog.h"

namespace tdp::engine {
namespace {

storage::Row RowOf(std::initializer_list<int64_t> cols) {
  return storage::Row(cols);
}

void LoadSample(storage::Catalog* cat) {
  storage::Table* t0 = cat->CreateTable("t0");
  storage::Table* t1 = cat->CreateTable("t1");
  t0->Upsert(1, RowOf({10, 11}));
  t0->Upsert(2, RowOf({20}));
  t1->Upsert(7, RowOf({-7}));
}

bool SameState(const storage::Catalog& a, const storage::Catalog& b) {
  for (uint32_t id = 0;; ++id) {
    storage::Table* ta = a.GetTable(id);
    storage::Table* tb = b.GetTable(id);
    if ((ta == nullptr) != (tb == nullptr)) return false;
    if (ta == nullptr) return true;
    if (ta->row_count() != tb->row_count()) return false;
    bool same = true;
    ta->ForEach([&](uint64_t key, const storage::Row& row) {
      auto r = tb->Read(key);
      if (!r.ok() || r.value().cols != row.cols) same = false;
    });
    if (!same) return false;
  }
}

TEST(CheckpointCodecTest, CaptureEncodeDecodeRestoreRoundTrip) {
  storage::Catalog cat;
  LoadSample(&cat);
  const Checkpoint ckpt = CaptureCheckpoint(cat, /*lsn=*/17);
  EXPECT_EQ(ckpt.lsn, 17u);
  ASSERT_EQ(ckpt.tables.size(), 2u);

  const std::vector<uint8_t> encoded = EncodeCheckpoint(ckpt);
  Checkpoint decoded;
  ASSERT_TRUE(DecodeCheckpoint(encoded, &decoded).ok());
  EXPECT_EQ(decoded.lsn, 17u);

  storage::Catalog fresh;
  fresh.CreateTable("t0");
  fresh.CreateTable("t1");
  RestoreCheckpoint(decoded, &fresh);
  EXPECT_TRUE(SameState(cat, fresh));
}

TEST(CheckpointCodecTest, EncodingIsDeterministic) {
  storage::Catalog a, b;
  LoadSample(&a);
  // Load b in a different row order; capture sorts by key.
  storage::Table* t0 = b.CreateTable("t0");
  storage::Table* t1 = b.CreateTable("t1");
  t1->Upsert(7, RowOf({-7}));
  t0->Upsert(2, RowOf({20}));
  t0->Upsert(1, RowOf({10, 11}));
  EXPECT_EQ(EncodeCheckpoint(CaptureCheckpoint(a, 5)),
            EncodeCheckpoint(CaptureCheckpoint(b, 5)));
}

TEST(CheckpointCodecTest, TruncationAndBitFlipsAreDataLoss) {
  storage::Catalog cat;
  LoadSample(&cat);
  const std::vector<uint8_t> encoded =
      EncodeCheckpoint(CaptureCheckpoint(cat, 3));
  // Every truncation fails (the trailing CRC can't be verified or the body
  // is short), and out is untouched.
  for (size_t cut = 0; cut < encoded.size(); ++cut) {
    Checkpoint out;
    out.lsn = 999;
    const Status s = DecodeCheckpoint(
        std::vector<uint8_t>(encoded.begin(), encoded.begin() + cut), &out);
    EXPECT_TRUE(s.IsDataLoss()) << "cut=" << cut;
    EXPECT_EQ(out.lsn, 999u) << "cut=" << cut;
  }
  for (size_t byte = 0; byte < encoded.size(); ++byte) {
    std::vector<uint8_t> damaged = encoded;
    damaged[byte] ^= 0x10;
    Checkpoint out;
    EXPECT_TRUE(DecodeCheckpoint(damaged, &out).IsDataLoss())
        << "byte=" << byte;
  }
}

TEST(CheckpointCodecTest, RestoreClearsRowsDeletedAfterSnapshot) {
  storage::Catalog cat;
  LoadSample(&cat);
  const Checkpoint ckpt = CaptureCheckpoint(cat, 1);
  // Post-snapshot divergence: a delete and an insert.
  cat.GetTable(uint32_t{0})->Upsert(55, RowOf({5}));
  ASSERT_TRUE(cat.GetTable(uint32_t{1})->Delete(7).ok());
  RestoreCheckpoint(ckpt, &cat);
  EXPECT_FALSE(cat.GetTable(uint32_t{0})->Exists(55));
  EXPECT_TRUE(cat.GetTable(uint32_t{1})->Exists(7));
  EXPECT_EQ(cat.GetTable(uint32_t{0})->row_count(), 2u);
}

TEST(CheckpointStoreTest, LoadLatestPrefersNewest) {
  storage::Catalog cat;
  LoadSample(&cat);
  CheckpointStore store;
  EXPECT_FALSE(store.LoadLatest().has_value());
  store.Save(EncodeCheckpoint(CaptureCheckpoint(cat, 1)));
  cat.GetTable(uint32_t{0})->Upsert(3, RowOf({30}));
  store.Save(EncodeCheckpoint(CaptureCheckpoint(cat, 2)));
  const auto latest = store.LoadLatest();
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->lsn, 2u);
}

TEST(CheckpointStoreTest, TornNewestFallsBackToOlderSlot) {
  storage::Catalog cat;
  LoadSample(&cat);
  CheckpointStore store;
  store.Save(EncodeCheckpoint(CaptureCheckpoint(cat, 1)));
  store.Save(EncodeCheckpoint(CaptureCheckpoint(cat, 2)));
  store.TearNewest(/*keep_bytes=*/9);  // crash mid-write of checkpoint 2
  const auto survivor = store.LoadLatest();
  ASSERT_TRUE(survivor.has_value());
  EXPECT_EQ(survivor->lsn, 1u);
  // A third save overwrites the torn slot; the good one stays loadable.
  store.Save(EncodeCheckpoint(CaptureCheckpoint(cat, 3)));
  ASSERT_TRUE(store.LoadLatest().has_value());
  EXPECT_EQ(store.LoadLatest()->lsn, 3u);
}

TEST(CheckpointStoreTest, SingleTornCheckpointLoadsNothing) {
  storage::Catalog cat;
  LoadSample(&cat);
  CheckpointStore store;
  store.Save(EncodeCheckpoint(CaptureCheckpoint(cat, 1)));
  store.TearNewest(4);
  EXPECT_FALSE(store.LoadLatest().has_value());
}

// Checkpoint + suffix replay reaches the same state as replaying the whole
// log from scratch — the recovery path equivalence the crash fuzzer checks
// at scale.
TEST(CheckpointReplayTest, SuffixReplayMatchesFullReplay) {
  storage::Catalog live;
  storage::Table* t0 = live.CreateTable("t0");
  std::vector<uint8_t> image;
  uint64_t lsn = 0;
  auto commit_put = [&](uint64_t key, int64_t v) {
    t0->Upsert(key, RowOf({v}));
    std::vector<log::RedoOp> ops;
    log::RedoOp op;
    op.kind = log::RedoOp::Kind::kPut;
    op.table = 0;
    op.key = key;
    op.after = RowOf({v});
    ops.push_back(op);
    ++lsn;
    log::AppendLogFrame(lsn, lsn, ops, &image);
  };
  commit_put(1, 10);
  commit_put(2, 20);
  const Checkpoint ckpt = CaptureCheckpoint(live, lsn);  // covers LSN 1-2
  commit_put(1, 11);
  commit_put(3, 30);

  std::vector<log::RecoveredTxn> recovered;
  ASSERT_TRUE(log::DecodeLogImage(image, &recovered).status.ok());

  storage::Catalog via_ckpt;
  via_ckpt.CreateTable("t0");
  RestoreCheckpoint(ckpt, &via_ckpt);
  ReplayRedo(recovered, &via_ckpt, /*start_after_lsn=*/ckpt.lsn);

  storage::Catalog via_full;
  via_full.CreateTable("t0");
  ReplayRedo(recovered, &via_full, 0);

  EXPECT_TRUE(SameState(via_ckpt, via_full));
  EXPECT_TRUE(SameState(via_ckpt, live));
}

}  // namespace
}  // namespace tdp::engine
