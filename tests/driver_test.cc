#include "workload/driver.h"

#include <gtest/gtest.h>

#include <atomic>

#include "engine/mysqlmini.h"
#include "workload/ycsb.h"

namespace tdp::workload {
namespace {

engine::MySQLMiniConfig FastEngine() {
  engine::MySQLMiniConfig cfg;
  cfg.row_work_ns = 1000;
  cfg.btree.level_work_ns = 0;
  cfg.data_disk.base_latency_ns = 0;
  cfg.data_disk.sigma = 0;
  cfg.log_disk.base_latency_ns = 2000;
  cfg.log_disk.sigma = 0;
  cfg.log_disk.flush_barrier_ns = 0;
  return cfg;
}

TEST(DriverTest, RunsRequestedNumberOfTxns) {
  engine::MySQLMini db(FastEngine());
  YcsbConfig wcfg;
  wcfg.rows = 2000;
  Ycsb ycsb(wcfg);
  ycsb.Load(&db);

  DriverConfig cfg;
  cfg.tps = 2000;
  cfg.connections = 8;
  cfg.num_txns = 500;
  cfg.warmup_txns = 100;
  const RunResult result = RunConstantRate(&db, &ycsb, cfg);

  EXPECT_EQ(result.committed, 500u);
  EXPECT_EQ(result.latencies.size(), 400u);  // post-warmup only
  EXPECT_GT(result.achieved_tps, 0);
  EXPECT_EQ(result.gave_up, 0u);
}

TEST(DriverTest, LatenciesArePositiveAndMeasured) {
  engine::MySQLMini db(FastEngine());
  YcsbConfig wcfg;
  wcfg.rows = 2000;
  Ycsb ycsb(wcfg);
  ycsb.Load(&db);

  DriverConfig cfg;
  cfg.tps = 1000;
  cfg.connections = 4;
  cfg.num_txns = 200;
  cfg.warmup_txns = 0;
  const RunResult result = RunConstantRate(&db, &ycsb, cfg);
  ASSERT_EQ(result.latencies.size(), 200u);
  for (int64_t l : result.latencies) EXPECT_GT(l, 0);
  const LatencySummary sum = result.Summary();
  EXPECT_GT(sum.mean_ns, 0);
  EXPECT_GT(result.LpNorm(2), 0);
}

TEST(DriverTest, ByTypeBucketsSumToTotal) {
  engine::MySQLMini db(FastEngine());
  YcsbConfig wcfg;
  wcfg.rows = 2000;
  Ycsb ycsb(wcfg);
  ycsb.Load(&db);

  DriverConfig cfg;
  cfg.tps = 2000;
  cfg.connections = 4;
  cfg.num_txns = 300;
  cfg.warmup_txns = 50;
  const RunResult result = RunConstantRate(&db, &ycsb, cfg);
  size_t total = 0;
  for (const auto& [type, v] : result.by_type) total += v.size();
  EXPECT_EQ(total, result.latencies.size());
}

TEST(DriverTest, HookFiresPerMeasuredTxn) {
  engine::MySQLMini db(FastEngine());
  YcsbConfig wcfg;
  wcfg.rows = 2000;
  Ycsb ycsb(wcfg);
  ycsb.Load(&db);

  std::atomic<uint64_t> events{0};
  DriverConfig cfg;
  cfg.tps = 2000;
  cfg.connections = 4;
  cfg.num_txns = 300;
  cfg.warmup_txns = 100;
  RunConstantRate(&db, &ycsb, cfg, [&](const TxnEvent& ev) {
    EXPECT_GT(ev.engine_txn_id, 0u);
    EXPECT_GT(ev.latency_ns, 0);
    EXPECT_GE(ev.commit_ns, ev.dispatch_ns);
    events.fetch_add(1);
  });
  EXPECT_EQ(events.load(), 200u);
}

TEST(DriverTest, ApproximatesTargetRate) {
  engine::MySQLMini db(FastEngine());
  YcsbConfig wcfg;
  wcfg.rows = 2000;
  Ycsb ycsb(wcfg);
  ycsb.Load(&db);

  DriverConfig cfg;
  cfg.tps = 1000;
  cfg.connections = 8;
  cfg.num_txns = 1000;
  cfg.warmup_txns = 0;
  const RunResult result = RunConstantRate(&db, &ycsb, cfg);
  // 1000 txns at 1000 tps ≈ 1s elapsed; generous bounds for CI noise.
  EXPECT_GT(result.elapsed_s, 0.8);
  EXPECT_LT(result.elapsed_s, 3.0);
  EXPECT_NEAR(result.achieved_tps, 1000, 350);
}

}  // namespace
}  // namespace tdp::workload
