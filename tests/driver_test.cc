#include "workload/driver.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>
#include <vector>

#include "engine/factory.h"
#include "workload/ycsb.h"

namespace tdp::workload {
namespace {

engine::MySQLMiniConfig FastEngine() {
  engine::MySQLMiniConfig cfg;
  cfg.row_work_ns = 1000;
  cfg.btree.level_work_ns = 0;
  cfg.data_disk.base_latency_ns = 0;
  cfg.data_disk.sigma = 0;
  cfg.log_disk.base_latency_ns = 2000;
  cfg.log_disk.sigma = 0;
  cfg.log_disk.flush_barrier_ns = 0;
  return cfg;
}

std::unique_ptr<engine::Database> OpenFast() {
  engine::EngineConfig config;
  config.mysql = FastEngine();
  auto db = engine::OpenDatabase(engine::EngineKind::kMySQLMini, config);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return std::move(db.value());
}

TEST(DriverTest, RunsRequestedNumberOfTxns) {
  auto db = OpenFast();
  YcsbConfig wcfg;
  wcfg.rows = 2000;
  Ycsb ycsb(wcfg);
  ycsb.Load(db.get());

  DriverConfig cfg;
  cfg.tps = 2000;
  cfg.connections = 8;
  cfg.num_txns = 500;
  cfg.warmup_txns = 100;
  const RunResult result = RunConstantRate(db.get(), &ycsb, cfg);

  EXPECT_EQ(result.committed, 500u);
  EXPECT_EQ(result.latencies.size(), 400u);  // post-warmup only
  EXPECT_GT(result.achieved_tps, 0);
  EXPECT_EQ(result.gave_up, 0u);
}

TEST(DriverTest, LatenciesArePositiveAndMeasured) {
  auto db = OpenFast();
  YcsbConfig wcfg;
  wcfg.rows = 2000;
  Ycsb ycsb(wcfg);
  ycsb.Load(db.get());

  DriverConfig cfg;
  cfg.tps = 1000;
  cfg.connections = 4;
  cfg.num_txns = 200;
  cfg.warmup_txns = 0;
  const RunResult result = RunConstantRate(db.get(), &ycsb, cfg);
  ASSERT_EQ(result.latencies.size(), 200u);
  for (int64_t l : result.latencies) EXPECT_GT(l, 0);
  const LatencySummary sum = result.Summary();
  EXPECT_GT(sum.mean_ns, 0);
  EXPECT_GT(result.LpNorm(2), 0);
}

TEST(DriverTest, ByTypeBucketsSumToTotal) {
  auto db = OpenFast();
  YcsbConfig wcfg;
  wcfg.rows = 2000;
  Ycsb ycsb(wcfg);
  ycsb.Load(db.get());

  DriverConfig cfg;
  cfg.tps = 2000;
  cfg.connections = 4;
  cfg.num_txns = 300;
  cfg.warmup_txns = 50;
  const RunResult result = RunConstantRate(db.get(), &ycsb, cfg);
  size_t total = 0;
  for (const auto& [type, v] : result.by_type) total += v.size();
  EXPECT_EQ(total, result.latencies.size());
}

TEST(DriverTest, HookFiresPerMeasuredTxn) {
  auto db = OpenFast();
  YcsbConfig wcfg;
  wcfg.rows = 2000;
  Ycsb ycsb(wcfg);
  ycsb.Load(db.get());

  std::atomic<uint64_t> events{0};
  DriverConfig cfg;
  cfg.tps = 2000;
  cfg.connections = 4;
  cfg.num_txns = 300;
  cfg.warmup_txns = 100;
  RunConstantRate(db.get(), &ycsb, cfg, [&](const TxnEvent& ev) {
    EXPECT_GT(ev.engine_txn_id, 0u);
    EXPECT_GT(ev.latency_ns, 0);
    EXPECT_GE(ev.commit_ns, ev.dispatch_ns);
    events.fetch_add(1);
  });
  EXPECT_EQ(events.load(), 200u);
}

TEST(DriverTest, PoissonArrivalsRunAllTxnsNearTargetRate) {
  auto db = OpenFast();
  YcsbConfig wcfg;
  wcfg.rows = 2000;
  Ycsb ycsb(wcfg);
  ycsb.Load(db.get());

  DriverConfig cfg;
  cfg.tps = 1000;
  cfg.connections = 8;
  cfg.num_txns = 1000;
  cfg.warmup_txns = 100;
  cfg.arrival = ArrivalProcess::kPoisson;
  const RunResult result = RunConstantRate(db.get(), &ycsb, cfg);
  EXPECT_EQ(result.committed, 1000u);
  EXPECT_EQ(result.latencies.size(), 900u);
  // Exponential gaps average to the same offered rate; generous CI bounds.
  EXPECT_NEAR(result.achieved_tps, 1000, 400);
}

TEST(DriverTest, PoissonGapsVaryUnlikeConstantRate) {
  // The Poisson stream must actually be irregular: with the same seed and
  // rate, the constant-rate dispatcher has (near-)identical inter-dispatch
  // gaps while the Poisson one does not. Compare dispatch-time spreads.
  auto run = [&](ArrivalProcess arrival) {
    auto db = OpenFast();
    YcsbConfig wcfg;
    wcfg.rows = 2000;
    Ycsb ycsb(wcfg);
    ycsb.Load(db.get());
    std::vector<int64_t> dispatch;
    std::mutex mu;
    DriverConfig cfg;
    cfg.tps = 2000;
    cfg.connections = 1;  // one connection: dispatch times are ordered
    cfg.num_txns = 300;
    cfg.warmup_txns = 0;
    cfg.arrival = arrival;
    RunConstantRate(db.get(), &ycsb, cfg, [&](const TxnEvent& ev) {
      std::lock_guard<std::mutex> g(mu);
      dispatch.push_back(ev.dispatch_ns);
    });
    std::sort(dispatch.begin(), dispatch.end());
    std::vector<double> gaps;
    for (size_t i = 1; i < dispatch.size(); ++i) {
      gaps.push_back(static_cast<double>(dispatch[i] - dispatch[i - 1]));
    }
    double mean = 0;
    for (double g : gaps) mean += g;
    mean /= static_cast<double>(gaps.size());
    double var = 0;
    for (double g : gaps) var += (g - mean) * (g - mean);
    var /= static_cast<double>(gaps.size());
    return std::sqrt(var) / mean;  // coefficient of variation of the gaps
  };
  const double cov_poisson = run(ArrivalProcess::kPoisson);
  const double cov_constant = run(ArrivalProcess::kConstant);
  // Exponential gaps have CoV ~1; a paced constant stream is far tighter.
  EXPECT_GT(cov_poisson, 0.5);
  EXPECT_LT(cov_constant, cov_poisson);
}

TEST(DriverTest, ApproximatesTargetRate) {
  auto db = OpenFast();
  YcsbConfig wcfg;
  wcfg.rows = 2000;
  Ycsb ycsb(wcfg);
  ycsb.Load(db.get());

  DriverConfig cfg;
  cfg.tps = 1000;
  cfg.connections = 8;
  cfg.num_txns = 1000;
  cfg.warmup_txns = 0;
  const RunResult result = RunConstantRate(db.get(), &ycsb, cfg);
  // 1000 txns at 1000 tps ≈ 1s elapsed; generous bounds for CI noise.
  EXPECT_GT(result.elapsed_s, 0.8);
  EXPECT_LT(result.elapsed_s, 3.0);
  EXPECT_NEAR(result.achieved_tps, 1000, 350);
}

}  // namespace
}  // namespace tdp::workload
