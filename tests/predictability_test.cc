#include "core/predictability.h"

#include <gtest/gtest.h>

#include <cmath>

namespace tdp::core {
namespace {

TEST(MetricsTest, FromLatencies) {
  // 1ms, 2ms, 3ms samples.
  const Metrics m = Metrics::FromLatencies({1000000, 2000000, 3000000});
  EXPECT_EQ(m.count, 3u);
  EXPECT_NEAR(m.mean_ms, 2.0, 1e-9);
  EXPECT_NEAR(m.variance_ms2, 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(m.cov, m.stddev_ms / m.mean_ms, 1e-9);
  EXPECT_NEAR(m.max_ms, 3.0, 1e-9);
  // Normalized L2 of {1,2,3} = sqrt(14/3).
  EXPECT_NEAR(m.lp2_ms, std::sqrt(14.0 / 3.0), 1e-6);
}

TEST(MetricsTest, EmptyIsZeroes) {
  const Metrics m = Metrics::FromLatencies({});
  EXPECT_EQ(m.count, 0u);
  EXPECT_EQ(m.mean_ms, 0);
  EXPECT_EQ(m.lp2_ms, 0);
}

TEST(RatiosTest, OrientationBaselineOverModified) {
  Metrics baseline = Metrics::FromLatencies({2000000, 6000000});
  Metrics modified = Metrics::FromLatencies({1000000, 3000000});
  const Ratios r = Ratios::Of(baseline, modified);
  EXPECT_NEAR(r.mean, 2.0, 1e-9);      // 4ms / 2ms
  EXPECT_NEAR(r.variance, 4.0, 1e-9);  // 4ms^2 / 1ms^2
  EXPECT_GT(r.p99, 1.9);
  EXPECT_NEAR(r.cov, 1.0, 1e-9);       // same shape
}

TEST(RatiosTest, ZeroDenominatorSafe) {
  Metrics baseline = Metrics::FromLatencies({1000000});
  Metrics modified = Metrics::FromLatencies({});
  const Ratios r = Ratios::Of(baseline, modified);
  EXPECT_EQ(r.mean, 0);
}

TEST(ReportTest, RowsContainLabel) {
  Metrics m = Metrics::FromLatencies({1000000, 2000000});
  EXPECT_NE(MetricsRow("my-config", m).find("my-config"), std::string::npos);
  Ratios r = Ratios::Of(m, m);
  const std::string row = RatioRow("vats-vs-fcfs", r);
  EXPECT_NE(row.find("vats-vs-fcfs"), std::string::npos);
  EXPECT_NE(row.find("1.00x"), std::string::npos);
}

TEST(MetricsTest, ToStringMentionsKeyNumbers) {
  Metrics m = Metrics::FromLatencies({1000000, 2000000, 3000000});
  const std::string s = m.ToString();
  EXPECT_NE(s.find("mean"), std::string::npos);
  EXPECT_NE(s.find("p99"), std::string::npos);
}

}  // namespace
}  // namespace tdp::core
