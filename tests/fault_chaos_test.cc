// Chaos test: inject a known fault schedule into the log device and use
// TProfiler's own variance tree as the correctness oracle — the injected
// variance must be attributed to the flush subtree (ISSUE: the
// bench_fault_attribution experiment, in test form).
#include <gtest/gtest.h>

#include "common/fault.h"
#include "common/metrics.h"
#include "engine/mysqlmini.h"
#include "tprofiler/analysis.h"
#include "tprofiler/profiler.h"
#include "workload/driver.h"
#include "workload/tpcc.h"

namespace tdp {
namespace {

// Low-contention engine: fast disks, cheap row work, 4 warehouses. With the
// injector disarmed nothing here produces outsized variance, so whatever the
// variance tree blames after arming it is the injector's doing.
engine::MySQLMiniConfig ChaosEngine(FaultInjector* log_fault) {
  engine::MySQLMiniConfig cfg;
  cfg.lock.policy = lock::SchedulerPolicy::kFCFS;
  cfg.lock.wait_timeout_ns = MillisToNanos(2000);
  cfg.row_work_ns = 500;
  cfg.btree.level_work_ns = 100;
  cfg.data_disk.base_latency_ns = 5000;
  cfg.data_disk.sigma = 0.2;
  cfg.log_disk.base_latency_ns = 10000;
  cfg.log_disk.sigma = 0.2;
  cfg.log_disk.flush_barrier_ns = 5000;
  cfg.log_disk.fault = log_fault;
  // Per-commit fsync keeps every committer's flush latency inside its own
  // fil_flush probe (no group-commit leader absorbing riders' waits).
  cfg.log_group_commit = false;
  return cfg;
}

TEST(FaultChaosTest, VarianceTreeBlamesTheFlushSubtree) {
  // Periodic 25x latency spikes on the log device, ~half the timeline:
  // 40 ms spike windows every 80 ms for 20 s (far longer than the run).
  FaultInjector inj;
  for (int64_t t = MillisToNanos(40); t < MillisToNanos(20000);
       t += MillisToNanos(80)) {
    inj.AddLatencySpike(t, MillisToNanos(40), 25.0);
  }

  engine::MySQLMini db(ChaosEngine(&inj));
  workload::TpccConfig tcfg;
  tcfg.warehouses = 4;
  workload::Tpcc tpcc(tcfg);
  tpcc.Load(&db);

  tprof::SessionConfig scfg;
  scfg.enabled = {"dispatch_command", "row_search_for_mysql", "row_upd_step",
                  "row_ins_clust_index_entry_low", "lock_wait_suspend_thread",
                  "os_event_wait", "trx_commit", "log_write_up_to",
                  "fil_flush", "buf_LRU_get_free_block"};
  tprof::Profiler::Instance().StartSession(scfg);

  workload::DriverConfig dcfg;
  dcfg.tps = 1200;
  dcfg.connections = 16;
  dcfg.num_txns = 1500;
  dcfg.warmup_txns = 0;
  inj.Arm();
  const workload::RunResult result = RunConstantRate(&db, &tpcc, dcfg);
  inj.Disarm();
  tprof::TraceData data = tprof::Profiler::Instance().EndSession();

  EXPECT_GT(result.committed, 1200u);
  EXPECT_GT(inj.stats().spikes.load(), 0u);

  tprof::VarianceAnalysis analysis(data,
                                   tprof::Profiler::Instance().path_tree());
  ASSERT_GT(analysis.num_txns(), 1000u);
  ASSERT_GT(analysis.total_variance(), 0);

  const auto shares = analysis.FunctionShares();
  ASSERT_FALSE(shares.empty());
  // The oracle: the injected fault schedule hit only the log flush, so the
  // profiler must rank fil_flush as the top variance contributor (shares
  // come back sorted by specificity-weighted score).
  EXPECT_EQ(shares[0].name, "fil_flush")
      << "top factor was " << shares[0].name << " ("
      << shares[0].pct_of_total * 100 << "% of total variance)\n"
      << analysis.ReportString(8);
  // And not marginally: the flush subtree should carry a dominant slice of
  // end-to-end latency variance.
  double flush_pct = 0, lock_pct = 0;
  for (const auto& s : shares) {
    if (s.name == "fil_flush") flush_pct = s.pct_of_total;
    if (s.name == "lock_wait_suspend_thread") lock_pct = s.pct_of_total;
  }
  EXPECT_GT(flush_pct, 0.2) << analysis.ReportString(8);
  EXPECT_GT(flush_pct, lock_pct) << analysis.ReportString(8);
}

TEST(FaultChaosTest, DisarmedInjectorChangesNothing) {
  // Same engine + schedule, injector never armed: the retry plumbing must
  // be a no-op — no retries, no degraded commits, no I/O errors anywhere.
  FaultInjector inj;
  inj.AddStall(0, MillisToNanos(10000));
  inj.AddWriteError(0, MillisToNanos(10000), 1.0);

  engine::MySQLMini db(ChaosEngine(&inj));
  workload::TpccConfig tcfg;
  tcfg.warehouses = 4;
  workload::Tpcc tpcc(tcfg);
  tpcc.Load(&db);

  workload::DriverConfig dcfg;
  dcfg.tps = 1200;
  dcfg.connections = 16;
  dcfg.num_txns = 600;
  dcfg.warmup_txns = 100;
  const workload::RunResult result = RunConstantRate(&db, &tpcc, dcfg);

  EXPECT_GT(result.committed, 400u);
  EXPECT_EQ(db.log_disk().stats().io_errors.load(), 0u);
  EXPECT_EQ(db.data_disk().stats().io_errors.load(), 0u);
  EXPECT_EQ(db.redo_log().stats().io_retries.load(), 0u);
  EXPECT_EQ(db.redo_log().stats().degraded_commits.load(), 0u);
  EXPECT_EQ(db.buffer_pool().stats().read_failures.load(), 0u);
  EXPECT_EQ(db.buffer_pool().stats().writeback_failures.load(), 0u);
  EXPECT_EQ(inj.stats().stalls.load(), 0u);
}

TEST(FaultChaosTest, RegistryMirrorsInjectorStats) {
#ifdef TDP_METRICS_DISABLED
  GTEST_SKIP() << "metrics compiled out";
#else
  metrics::Registry::Global().ResetAll();  // quiesced: private deltas below

  // Latency spikes plus probabilistic write errors on the log device: the
  // spikes drive the fault.spikes counter, the write errors drive retries
  // through every RetryIo site on the commit path.
  FaultInjector inj;
  inj.AddLatencySpike(0, MillisToNanos(20000), 10.0);
  inj.AddWriteError(0, MillisToNanos(20000), 0.3);

  engine::MySQLMini db(ChaosEngine(&inj));
  workload::TpccConfig tcfg;
  tcfg.warehouses = 4;
  workload::Tpcc tpcc(tcfg);
  tpcc.Load(&db);

  workload::DriverConfig dcfg;
  dcfg.tps = 1200;
  dcfg.connections = 16;
  dcfg.num_txns = 600;
  dcfg.warmup_txns = 0;
  inj.Arm();
  const workload::RunResult result = RunConstantRate(&db, &tpcc, dcfg);
  inj.Disarm();

  EXPECT_GT(result.committed, 400u);
  const metrics::MetricsSnapshot snap =
      metrics::Registry::Global().TakeSnapshot();
  // Every injector-side event count has an identical registry mirror.
  EXPECT_EQ(snap.counter("fault.spikes"), inj.stats().spikes.load());
  EXPECT_EQ(snap.counter("fault.stalls"), inj.stats().stalls.load());
  EXPECT_EQ(snap.counter("fault.write_errors"),
            inj.stats().write_errors.load());
  EXPECT_EQ(snap.counter("fault.torn_flushes"),
            inj.stats().torn_flushes.load());
  EXPECT_EQ(snap.counter("fault.read_errors"),
            inj.stats().read_errors.load());
  EXPECT_GT(snap.counter("fault.spikes"), 0u);
  EXPECT_GT(snap.counter("fault.write_errors"), 0u);

  // The process-wide RetryIo counter decomposes exactly into the
  // per-subsystem retry counters (this engine has no WAL).
  EXPECT_EQ(snap.counter("io.retries"),
            snap.counter("log.io_retries") + snap.counter("buf.io_retries"));
  EXPECT_GT(snap.counter("io.retries"), 0u);

  // Registry mirrors of the engine-side stats structs stay exact, too.
  EXPECT_EQ(snap.counter("log.io_retries"),
            db.redo_log().stats().io_retries.load());
  EXPECT_EQ(snap.counter("log.degraded_commits"),
            db.redo_log().stats().degraded_commits.load());
  EXPECT_EQ(snap.counter("buf.io_retries"),
            db.buffer_pool().stats().io_retries.load());
#endif
}

}  // namespace
}  // namespace tdp
