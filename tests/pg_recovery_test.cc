// pg WAL crash recovery: framed logical redo through WalManager, the torn-
// flush × durable-prefix combo on the pg path, two-disk parallel logging
// with one torn disk tail (the LSN merge), mid-stream corruption detection,
// and checkpoint + suffix recovery via PgMini::TakeCheckpoint.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "engine/recovery.h"
#include "pg/pgmini.h"

namespace tdp::pg {
namespace {

PgMiniConfig FastConfig(int num_log_sets) {
  PgMiniConfig cfg;
  cfg.logical_redo = true;
  cfg.row_work_ns = 0;
  cfg.predicate_check_ns = 0;
  cfg.btree.level_work_ns = 0;
  cfg.wal.block_bytes = 4096;
  cfg.wal.num_log_sets = num_log_sets;
  cfg.wal.disk.base_latency_ns = 1000;
  cfg.wal.disk.sigma = 0;
  cfg.wal.disk.flush_barrier_ns = 0;
  return cfg;
}

void CreateSchema(engine::Database* db) { db->CreateTable("acct", 64); }

// One committed txn per key: put acct[key] = {100 + key}.
void CommitPuts(engine::Database* db, uint64_t first_key, int count) {
  auto conn = db->Connect();
  for (int i = 0; i < count; ++i) {
    ASSERT_TRUE(conn->Begin().ok());
    ASSERT_TRUE(conn->Insert(db->TableId("acct"), first_key + i,
                             storage::Row{100 + static_cast<int64_t>(
                                                    first_key + i)})
                    .ok());
    ASSERT_TRUE(conn->Commit().ok());
  }
}

TEST(PgRecoveryTest, CommittedTransactionsSurviveViaWalImage) {
  PgMini db(FastConfig(1));
  CreateSchema(&db);
  const uint32_t acct = db.TableId("acct");
  CommitPuts(&db, 0, 4);
  EXPECT_EQ(db.wal().last_lsn(), 4u);

  std::vector<log::RecoveredTxn> recovered;
  const WalManager::RecoveryResult r =
      WalManager::RecoverCommitted(db.wal().CrashImages(), &recovered);
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.frames, 4u);
  EXPECT_EQ(r.torn_sets, 0);
  ASSERT_EQ(recovered.size(), 4u);
  // The merge hands back commit order.
  for (size_t i = 0; i < recovered.size(); ++i) {
    EXPECT_EQ(recovered[i].lsn, i + 1);
  }

  PgMini fresh(FastConfig(1));
  CreateSchema(&fresh);
  PgMini::RecoverInto(recovered, &fresh);
  EXPECT_EQ(fresh.TableRowCount(acct), 4u);
  auto check = fresh.Connect();
  ASSERT_TRUE(check->Begin().ok());
  for (uint64_t k = 0; k < 4; ++k) {
    EXPECT_EQ(*check->ReadColumn(acct, k, 0),
              100 + static_cast<int64_t>(k));
  }
  ASSERT_TRUE(check->Commit().ok());
}

// The satellite combo test on the pg path: with torn flushes armed past the
// retry budget, degraded commits append frames but stay undurable, and
// recovery from the crash images reconstructs exactly the durable prefix.
TEST(PgRecoveryFaultComboTest, TornFlushRecoversExactlyTheDurablePrefix) {
  FaultInjector inj;
  inj.AddTornFlush(0, MillisToNanos(60000), 1.0);

  PgMiniConfig cfg = FastConfig(1);
  cfg.wal.degrade_on_stall = true;  // give up instead of retrying forever
  cfg.wal.io_retry.max_attempts = 2;
  cfg.wal.io_retry.backoff_ns = 1000;
  cfg.wal.disk.fault = &inj;
  PgMini db(cfg);
  CreateSchema(&db);
  const uint32_t acct = db.TableId("acct");

  constexpr int kDurable = 3, kTotal = 6;
  CommitPuts(&db, 0, kDurable);
  inj.Arm();
  CommitPuts(&db, kDurable, kTotal - kDurable);  // degraded: acked, undurable
  EXPECT_GE(db.wal().stats().degraded_commits.load(),
            static_cast<uint64_t>(kTotal - kDurable));

  std::vector<log::RecoveredTxn> recovered;
  const WalManager::RecoveryResult r =
      WalManager::RecoverCommitted(db.wal().CrashImages(), &recovered);
  ASSERT_TRUE(r.status.ok());
  ASSERT_EQ(recovered.size(), static_cast<size_t>(kDurable));

  PgMini fresh(FastConfig(1));
  CreateSchema(&fresh);
  PgMini::RecoverInto(recovered, &fresh);
  EXPECT_EQ(fresh.TableRowCount(acct), static_cast<uint64_t>(kDurable));

  // A post-crash read may also surface part of the unflushed tail. A tail
  // cut mid-frame is a torn tail, not extra transactions.
  std::vector<log::RecoveredTxn> with_tail;
  const WalManager::RecoveryResult torn = WalManager::RecoverCommitted(
      db.wal().CrashImages({/*extra_tails=*/5}), &with_tail);
  ASSERT_TRUE(torn.status.ok());
  EXPECT_EQ(torn.torn_sets, 1);
  EXPECT_EQ(with_tail.size(), static_cast<size_t>(kDurable));
}

// Two-disk parallel logging: consecutive LSNs spread across disks, one disk
// loses its tail, and the merge still reconstructs every surviving frame in
// LSN order. An uncontended committer always wins set 0's try_lock, so two
// concurrent committers are what puts frames on the second disk.
TEST(PgRecoveryTest, TwoDiskMergeToleratesOneTornTail) {
  WalConfig wcfg;
  wcfg.block_bytes = 4096;
  wcfg.num_log_sets = 2;
  wcfg.disk.base_latency_ns = 1000;
  wcfg.disk.sigma = 0;
  wcfg.disk.flush_barrier_ns = 0;
  WalManager wal(wcfg);

  constexpr int kPerThread = 12;
  auto commit_range = [&](uint64_t first_key) {
    for (int i = 0; i < kPerThread; ++i) {
      std::vector<log::RedoOp> ops(1);
      ops[0].kind = log::RedoOp::Kind::kPut;
      ops[0].table = 0;
      ops[0].key = first_key + i;
      ops[0].after = storage::Row{static_cast<int64_t>(first_key + i)};
      EXPECT_TRUE(wal.CommitFlush(first_key + i, 512, ops).ok());
    }
  };
  // Rounds of two concurrent committers until the second disk has frames
  // (overlap is overwhelmingly likely per round but not guaranteed).
  uint64_t committed = 0;
  uint64_t next_key = 0;
  while (wal.stats().second_log_used.load() == 0 && next_key < 1000) {
    std::thread a(commit_range, next_key);
    std::thread b(commit_range, next_key + 500000);
    a.join();
    b.join();
    committed += 2 * kPerThread;
    next_key += 100;
  }
  ASSERT_GT(wal.stats().second_log_used.load(), 0u);

  std::vector<std::vector<uint8_t>> images = wal.CrashImages();
  ASSERT_EQ(images.size(), 2u);
  ASSERT_FALSE(images[0].empty());
  ASSERT_FALSE(images[1].empty());

  // Which transaction dies with disk 1's tail? The last frame of its image.
  std::vector<log::RecoveredTxn> set1;
  ASSERT_TRUE(log::DecodeLogImage(images[1], &set1).status.ok());
  ASSERT_FALSE(set1.empty());
  const uint64_t lost_key = set1.back().ops.at(0).key;

  images[1].resize(images[1].size() - 1);  // the torn disk tail
  std::vector<log::RecoveredTxn> recovered;
  const WalManager::RecoveryResult r =
      WalManager::RecoverCommitted(images, &recovered);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.torn_sets, 1);
  ASSERT_EQ(recovered.size(), static_cast<size_t>(committed - 1));
  EXPECT_TRUE(std::is_sorted(recovered.begin(), recovered.end(),
                             [](const log::RecoveredTxn& a,
                                const log::RecoveredTxn& b) {
                               return a.lsn < b.lsn;
                             }));

  storage::Catalog catalog;
  catalog.CreateTable("acct");
  engine::ReplayRedo(recovered, &catalog);
  storage::Table* acct = catalog.GetTable(uint32_t{0});
  EXPECT_EQ(acct->row_count(), static_cast<uint64_t>(committed - 1));
  EXPECT_FALSE(acct->Exists(lost_key));
  for (const log::RecoveredTxn& t : recovered) {
    const uint64_t k = t.ops.at(0).key;
    ASSERT_TRUE(acct->Exists(k)) << "key " << k;
    EXPECT_EQ(acct->Read(k).value().Get(0), static_cast<int64_t>(k));
  }
}

TEST(PgRecoveryTest, MidStreamCorruptionIsDataLossNotGarbage) {
  PgMini db(FastConfig(2));
  CreateSchema(&db);
  CommitPuts(&db, 0, 6);
  std::vector<std::vector<uint8_t>> images = db.wal().CrashImages();
  // Damage an early byte of set 0: its later frames are unreachable, but
  // set 1's frames all survive the merge.
  ASSERT_GT(images[0].size(), log::kFrameHeaderBytes);
  images[0][log::kFrameHeaderBytes / 2] ^= 0x40;
  std::vector<log::RecoveredTxn> recovered;
  const WalManager::RecoveryResult r =
      WalManager::RecoverCommitted(images, &recovered);
  EXPECT_TRUE(r.status.IsDataLoss());
  std::vector<log::RecoveredTxn> set1_only;
  ASSERT_TRUE(log::DecodeLogImage(images[1], &set1_only).status.ok());
  EXPECT_GE(recovered.size(), set1_only.size());
  EXPECT_LT(recovered.size(), 6u);
}

TEST(PgRecoveryTest, CheckpointPlusSuffixMatchesFullReplay) {
  PgMini db(FastConfig(1));
  CreateSchema(&db);
  const uint32_t acct = db.TableId("acct");
  CommitPuts(&db, 0, 3);
  const engine::Checkpoint ckpt = db.TakeCheckpoint().value();
  EXPECT_EQ(ckpt.lsn, 3u);
  CommitPuts(&db, 3, 3);

  std::vector<log::RecoveredTxn> recovered;
  ASSERT_TRUE(
      WalManager::RecoverCommitted(db.wal().CrashImages(), &recovered)
          .status.ok());

  PgMini via_ckpt(FastConfig(1));
  CreateSchema(&via_ckpt);
  engine::RestoreCheckpoint(ckpt, &via_ckpt.catalog());
  PgMini::RecoverInto(recovered, &via_ckpt, /*start_after_lsn=*/ckpt.lsn);

  PgMini via_full(FastConfig(1));
  CreateSchema(&via_full);
  PgMini::RecoverInto(recovered, &via_full);

  auto a = via_ckpt.Connect();
  auto b = via_full.Connect();
  ASSERT_TRUE(a->Begin().ok());
  ASSERT_TRUE(b->Begin().ok());
  for (uint64_t k = 0; k < 6; ++k) {
    EXPECT_EQ(*a->ReadColumn(acct, k, 0), *b->ReadColumn(acct, k, 0));
    EXPECT_EQ(*a->ReadColumn(acct, k, 0), 100 + static_cast<int64_t>(k));
  }
  ASSERT_TRUE(a->Commit().ok());
  ASSERT_TRUE(b->Commit().ok());
}

}  // namespace
}  // namespace tdp::pg
