// ticket_agency: a SEATS-style seat-booking service built directly on the
// public API — a handful of flights, many concurrent booking agents, and a
// strict latency SLO. Demonstrates how the lock scheduling policy changes
// the fraction of bookings that blow the SLO without touching throughput.
//
//   $ ./build/examples/ticket_agency
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/stats.h"
#include "core/toolkit.h"
#include "engine/factory.h"
#include "engine/txn.h"

using namespace tdp;

namespace {

constexpr int kFlights = 8;
constexpr int kSeatsPerFlight = 150;
constexpr int kAgents = 48;
constexpr int kBookingsPerAgent = 120;
constexpr double kSloMs = 25.0;

struct AgencyResult {
  LatencySummary latency;
  uint64_t slo_violations = 0;
  uint64_t bookings = 0;
  uint64_t sold_out = 0;
};

AgencyResult RunAgency(lock::SchedulerPolicy policy) {
  engine::EngineConfig config;
  config.mysql = core::Toolkit::MysqlDefault(policy);
  auto opened = engine::OpenDatabase(engine::EngineKind::kMySQLMini, config);
  if (!opened.ok()) {
    std::fprintf(stderr, "OpenDatabase: %s\n",
                 opened.status().ToString().c_str());
    std::exit(1);
  }
  engine::Database& db = *opened.value();
  const uint32_t flights = db.CreateTable("flights", 4);
  const uint32_t seats = db.CreateTable("seats", 64);
  const uint32_t bookings = db.CreateTable("bookings", 64);
  for (int f = 0; f < kFlights; ++f) {
    db.BulkUpsert(flights, f, storage::Row{kSeatsPerFlight});
    for (int s = 0; s < kSeatsPerFlight; ++s) {
      db.BulkUpsert(seats, uint64_t(f) * 256 + s, storage::Row{0});
    }
  }

  LatencySample latencies;
  std::atomic<uint64_t> violations{0}, booked{0}, sold_out{0},
      next_booking{1};

  // RunTxn owns the retry loop: deadlock and lock-timeout victims rerun,
  // anything else (including the sold-out NotFound below) is final.
  engine::RetryPolicy retry;
  retry.retry_aborted = false;

  auto agent = [&](int agent_id) {
    auto conn = db.Connect();
    Rng rng(agent_id + 1);
    for (int i = 0; i < kBookingsPerAgent; ++i) {
      const int f = static_cast<int>(rng.Uniform(kFlights));
      const int seat = static_cast<int>(rng.Uniform(kSeatsPerFlight));
      const int64_t t0 = NowNanos();
      const Status s =
          engine::RunTxn(*conn, retry, [&](engine::Connection& c) {
            // Check availability (nonlocking read)...
            c.Select(flights, f);
            Result<int64_t> left = c.ReadColumn(flights, f, 0);
            if (left.ok() && *left <= 0) {
              return Status::NotFound("sold out");
            }
            // ...then book: seat, booking record, and the hot seats-left
            // row.
            Status st = c.Update(seats, uint64_t(f) * 256 + seat, 0, 1);
            if (st.ok()) {
              st = c.Insert(bookings, next_booking.fetch_add(1),
                            storage::Row{f, seat, agent_id});
            }
            if (st.ok()) st = c.Update(flights, f, 0, -1);
            return st;
          });
      if (s.ok()) {
        booked.fetch_add(1);
      } else if (s.IsNotFound()) {
        sold_out.fetch_add(1);
      }
      const int64_t dt = NowNanos() - t0;
      latencies.Add(dt);
      if (NanosToMillis(dt) > kSloMs) violations.fetch_add(1);
      // Agents think for a moment between bookings.
      std::this_thread::sleep_for(std::chrono::microseconds(
          500 + rng.Uniform(1500)));
    }
  };

  std::vector<std::thread> agents;
  for (int a = 0; a < kAgents; ++a) agents.emplace_back(agent, a);
  for (auto& t : agents) t.join();

  AgencyResult out;
  out.latency = latencies.Summarize();
  out.slo_violations = violations.load();
  out.bookings = booked.load();
  out.sold_out = sold_out.load();
  return out;
}

void Report(const char* label, const AgencyResult& r) {
  const double total = static_cast<double>(kAgents) * kBookingsPerAgent;
  std::printf(
      "  %-5s bookings=%llu  mean=%.2fms  p99=%.2fms  SLO(%.0fms) misses: "
      "%.2f%%\n",
      label, static_cast<unsigned long long>(r.bookings),
      r.latency.mean_ns / 1e6, r.latency.p99_ns / 1e6, kSloMs,
      100.0 * static_cast<double>(r.slo_violations) / total);
}

}  // namespace

int main() {
  std::printf("ticket agency: %d flights x %d seats, %d concurrent agents\n",
              kFlights, kSeatsPerFlight, kAgents);
  std::printf("booking with FCFS lock scheduling...\n");
  const AgencyResult fcfs = RunAgency(lock::SchedulerPolicy::kFCFS);
  Report("FCFS", fcfs);
  std::printf("booking with VATS...\n");
  const AgencyResult vats = RunAgency(lock::SchedulerPolicy::kVATS);
  Report("VATS", vats);
  return 0;
}
