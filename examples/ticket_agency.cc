// ticket_agency: a SEATS-style seat-booking service built directly on the
// public API — a handful of flights, many concurrent booking agents, and a
// strict latency SLO. Demonstrates how the lock scheduling policy changes
// the fraction of bookings that blow the SLO without touching throughput.
//
//   $ ./build/examples/ticket_agency
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/stats.h"
#include "core/toolkit.h"
#include "engine/mysqlmini.h"

using namespace tdp;

namespace {

constexpr int kFlights = 8;
constexpr int kSeatsPerFlight = 150;
constexpr int kAgents = 48;
constexpr int kBookingsPerAgent = 120;
constexpr double kSloMs = 25.0;

struct AgencyResult {
  LatencySummary latency;
  uint64_t slo_violations = 0;
  uint64_t bookings = 0;
  uint64_t sold_out = 0;
};

AgencyResult RunAgency(lock::SchedulerPolicy policy) {
  engine::MySQLMini db(core::Toolkit::MysqlDefault(policy));
  const uint32_t flights = db.CreateTable("flights", 4);
  const uint32_t seats = db.CreateTable("seats", 64);
  const uint32_t bookings = db.CreateTable("bookings", 64);
  for (int f = 0; f < kFlights; ++f) {
    db.BulkUpsert(flights, f, storage::Row{kSeatsPerFlight});
    for (int s = 0; s < kSeatsPerFlight; ++s) {
      db.BulkUpsert(seats, uint64_t(f) * 256 + s, storage::Row{0});
    }
  }

  LatencySample latencies;
  std::atomic<uint64_t> violations{0}, booked{0}, sold_out{0},
      next_booking{1};

  auto agent = [&](int agent_id) {
    auto conn = db.Connect();
    Rng rng(agent_id + 1);
    for (int i = 0; i < kBookingsPerAgent; ++i) {
      const int f = static_cast<int>(rng.Uniform(kFlights));
      const int seat = static_cast<int>(rng.Uniform(kSeatsPerFlight));
      const int64_t t0 = NowNanos();
      for (;;) {  // retry deadlock victims
        conn->Begin();
        // Check availability (nonlocking read)...
        conn->Select(flights, f);
        Result<int64_t> left = conn->ReadColumn(flights, f, 0);
        if (left.ok() && *left <= 0) {
          conn->Rollback();
          sold_out.fetch_add(1);
          break;
        }
        // ...then book: seat, booking record, and the hot seats-left row.
        Status s = conn->Update(seats, uint64_t(f) * 256 + seat, 0, 1);
        if (s.ok()) {
          s = conn->Insert(bookings, next_booking.fetch_add(1),
                           storage::Row{f, seat, agent_id});
        }
        if (s.ok()) s = conn->Update(flights, f, 0, -1);
        if (s.ok()) s = conn->Commit();
        if (s.ok()) {
          booked.fetch_add(1);
          break;
        }
        conn->Rollback();
        if (!s.IsDeadlock() && !s.IsLockTimeout()) break;
      }
      const int64_t dt = NowNanos() - t0;
      latencies.Add(dt);
      if (NanosToMillis(dt) > kSloMs) violations.fetch_add(1);
      // Agents think for a moment between bookings.
      std::this_thread::sleep_for(std::chrono::microseconds(
          500 + rng.Uniform(1500)));
    }
  };

  std::vector<std::thread> agents;
  for (int a = 0; a < kAgents; ++a) agents.emplace_back(agent, a);
  for (auto& t : agents) t.join();

  AgencyResult out;
  out.latency = latencies.Summarize();
  out.slo_violations = violations.load();
  out.bookings = booked.load();
  out.sold_out = sold_out.load();
  return out;
}

void Report(const char* label, const AgencyResult& r) {
  const double total = static_cast<double>(kAgents) * kBookingsPerAgent;
  std::printf(
      "  %-5s bookings=%llu  mean=%.2fms  p99=%.2fms  SLO(%.0fms) misses: "
      "%.2f%%\n",
      label, static_cast<unsigned long long>(r.bookings),
      r.latency.mean_ns / 1e6, r.latency.p99_ns / 1e6, kSloMs,
      100.0 * static_cast<double>(r.slo_violations) / total);
}

}  // namespace

int main() {
  std::printf("ticket agency: %d flights x %d seats, %d concurrent agents\n",
              kFlights, kSeatsPerFlight, kAgents);
  std::printf("booking with FCFS lock scheduling...\n");
  const AgencyResult fcfs = RunAgency(lock::SchedulerPolicy::kFCFS);
  Report("FCFS", fcfs);
  std::printf("booking with VATS...\n");
  const AgencyResult vats = RunAgency(lock::SchedulerPolicy::kVATS);
  Report("VATS", vats);
  return 0;
}
