// tuning_advisor: variance-aware tuning (Section 6.3) on the closed-loop
// auto-tuner in src/tuning (docs/tuning.md).
//
// Earlier versions of this example hand-rolled the sweep: open an engine
// per setting, run the workload, compare variances by eye. It now drives
// the real tuner — declarative KnobSpace, TrialRunner replicates,
// bootstrap-CI objective, successive halving — for the two mysqlmini knobs,
// and shows the TrialSource seam by plugging a custom voltmini
// worker-count measurement into the same search.
//
//   $ ./build/examples/tuning_advisor
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/histogram.h"
#include "common/random.h"
#include "core/toolkit.h"
#include "tuning/knobs.h"
#include "tuning/objective.h"
#include "tuning/search.h"
#include "tuning/trial.h"
#include "volt/voltmini.h"

using namespace tdp;

namespace {

// Example-sized search: one replicate to screen, one rung to confirm.
tuning::SearchConfig QuickSearch() {
  tuning::SearchConfig s;
  s.initial_replicates = 1;
  s.max_rungs = 2;
  return s;
}

void RunSearch(const char* knob, tuning::TrialSource& source,
               const tuning::KnobSpace& space, const tuning::Objective& obj,
               const char* caveat) {
  const tuning::TuneResult result =
      tuning::SuccessiveHalving(source, space, obj, QuickSearch());
  std::printf("\n%s:\n%s", knob,
              tuning::RecommendationTable(result, obj).c_str());
  std::printf("=> %s — %s\n", result.arms[result.best].knobs.Label().c_str(),
              caveat);
}

// The TrialSource seam: voltmini is not one of TrialRunner's engines, but
// any measurement that can fill a TrialMeasurement can ride the same
// objective + halving machinery. knobs.workers is the swept knob.
class VoltWorkerSource : public tuning::TrialSource {
 public:
  tuning::TrialMeasurement Measure(const tuning::KnobConfig& knobs,
                                   int replicate) override {
    volt::VoltMini db(core::Toolkit::VoltDefault(knobs.workers));
    db.Start();
    Rng rng(5 + static_cast<uint64_t>(replicate));
    std::vector<std::shared_ptr<volt::VoltMini::Ticket>> tickets;
    const int64_t start = NowNanos();
    int64_t next = start;
    for (int i = 0; i < 800; ++i) {
      const int64_t now = NowNanos();
      if (next > now)
        std::this_thread::sleep_for(std::chrono::nanoseconds(next - now));
      next += 2200000;  // ~450 txns/s offered
      const int64_t us = 1000 + static_cast<int64_t>(rng.Uniform(4000));
      tickets.push_back(db.Submit(static_cast<int>(rng.Uniform(8)), [us] {
        std::this_thread::sleep_for(std::chrono::microseconds(us));
      }));
    }
    Histogram lat;
    for (auto& t : tickets) {
      t->Wait();
      lat.Add(t->latency_ns());
    }
    db.Stop();
    tuning::TrialMeasurement m;
    m.latency = lat.Snapshot();
    m.committed = tickets.size();
    m.achieved_tps =
        static_cast<double>(tickets.size()) * 1e9 / (NowNanos() - start);
    return m;
  }
};

}  // namespace

int main() {
  std::printf("variance-aware tuning advisor (TPC-C probe workload)\n");

  // Knob 1: redo flush policy — minimize p99.9 subject to keeping the
  // offered throughput.
  {
    tuning::KnobSpace space;
    space.flush_policies = {log::FlushPolicy::kEagerFlush,
                            log::FlushPolicy::kLazyFlush,
                            log::FlushPolicy::kLazyWrite};
    tuning::TrialConfig trial;
    trial.tps = 420;
    trial.num_txns = 1200;
    trial.warmup_txns = 120;
    tuning::TrialRunner runner(trial);
    tuning::Objective obj;
    obj.min_tps = 280;
    RunSearch("redo flush policy", runner, space, obj,
              "lazy policies lose forward progress on a crash (Appendix B)");
  }

  // Knob 2: buffer pool size, on the memory-constrained 2-WH baseline.
  {
    tuning::KnobSpace space;
    space.buffer_pool_pages = {96, 224, 512};
    tuning::TrialConfig trial;
    trial.tps = 420;
    trial.num_txns = 1200;
    trial.warmup_txns = 120;
    trial.memory_contended = true;
    tuning::TrialRunner runner(trial);
    tuning::Objective obj;
    obj.min_tps = 280;
    RunSearch("buffer pool size", runner, space, obj,
              "bigger pools cut both misses and LRU contention");
  }

  // Knob 3: voltmini worker threads, via a custom TrialSource. Queue wait
  // is ~all of the event-based engine's variance, so tune for CoV.
  {
    tuning::KnobSpace space;
    space.workers = {2, 8, 16};
    VoltWorkerSource source;
    tuning::Objective obj;
    obj.goal = tuning::Goal::kMinCoV;
    RunSearch("voltmini worker threads", source, space, obj,
              "queue wait is ~all of the event-based engine's variance");
  }
  return 0;
}
