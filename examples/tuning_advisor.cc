// tuning_advisor: variance-aware tuning (Section 6.3) as a tool.
//
// Sweeps the tuning knobs the paper identifies — buffer-pool size, redo
// flush policy, and (for the event-based engine) worker threads — measures
// mean and variance for each setting, and prints a recommendation per knob.
//
//   $ ./build/examples/tuning_advisor
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/toolkit.h"
#include "engine/factory.h"
#include "volt/voltmini.h"
#include "workload/tpcc.h"

using namespace tdp;

namespace {

struct Setting {
  std::string label;
  core::Metrics metrics;
};

std::unique_ptr<engine::Database> OpenMysql(
    const engine::MySQLMiniConfig& cfg) {
  engine::EngineConfig config;
  config.mysql = cfg;
  auto db = engine::OpenDatabase(engine::EngineKind::kMySQLMini, config);
  if (!db.ok()) {
    std::fprintf(stderr, "OpenDatabase: %s\n", db.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(db.value());
}

core::Metrics Measure(const engine::MySQLMiniConfig& cfg,
                      const workload::TpccConfig& tcfg, double tps) {
  auto db = OpenMysql(cfg);
  workload::Tpcc tpcc(tcfg);
  tpcc.Load(db.get());
  workload::DriverConfig driver = core::Toolkit::DriverDefault();
  driver.tps = tps;
  driver.num_txns = 2500;
  driver.warmup_txns = 250;
  return core::Metrics::From(RunConstantRate(db.get(), &tpcc, driver));
}

void Recommend(const char* knob, const std::vector<Setting>& settings,
               const char* caveat = nullptr) {
  std::printf("\n%s:\n", knob);
  size_t best = 0;
  for (size_t i = 0; i < settings.size(); ++i) {
    std::printf("  %-24s mean=%8.3fms  var=%10.4fms^2  p99=%8.3fms\n",
                settings[i].label.c_str(), settings[i].metrics.mean_ms,
                settings[i].metrics.variance_ms2, settings[i].metrics.p99_ms);
    if (settings[i].metrics.variance_ms2 <
        settings[best].metrics.variance_ms2) {
      best = i;
    }
  }
  std::printf("  => lowest variance: %s%s%s\n", settings[best].label.c_str(),
              caveat ? " — " : "", caveat ? caveat : "");
}

}  // namespace

int main() {
  std::printf("variance-aware tuning advisor (TPC-C probe workload)\n");

  // Knob 1: buffer pool size (2-WH, memory-constrained baseline).
  {
    std::vector<Setting> settings;
    for (int pct : {33, 66, 100}) {
      engine::MySQLMiniConfig cfg =
          core::Toolkit::MysqlMemoryContended(lock::SchedulerPolicy::kFCFS);
      workload::Tpcc sizer(core::Toolkit::Tpcc2WH());
      auto sizing_db = OpenMysql(cfg);
      sizer.Load(sizing_db.get());
      cfg.buffer_pool_pages =
          std::max<uint64_t>(8, sizer.DataPages(*sizing_db) * pct / 100);
      settings.push_back({std::to_string(pct) + "% of database",
                          Measure(cfg, core::Toolkit::Tpcc2WH(), 400)});
    }
    Recommend("buffer pool size", settings,
              "bigger pools cut both misses and LRU contention");
  }

  // Knob 2: redo flush policy.
  {
    std::vector<Setting> settings;
    for (auto policy : {log::FlushPolicy::kEagerFlush,
                        log::FlushPolicy::kLazyFlush,
                        log::FlushPolicy::kLazyWrite}) {
      engine::MySQLMiniConfig cfg =
          core::Toolkit::MysqlDefault(lock::SchedulerPolicy::kFCFS);
      cfg.flush_policy = policy;
      settings.push_back({log::FlushPolicyName(policy),
                          Measure(cfg, core::Toolkit::TpccContended(), 520)});
    }
    Recommend("redo flush policy", settings,
              "lazy policies lose forward progress on a crash (Appendix B)");
  }

  // Knob 3: voltmini worker threads.
  {
    std::vector<Setting> settings;
    for (int workers : {2, 8, 16}) {
      volt::VoltMini db(core::Toolkit::VoltDefault(workers));
      db.Start();
      Rng rng(5);
      std::vector<std::shared_ptr<volt::VoltMini::Ticket>> tickets;
      int64_t next = NowNanos();
      for (int i = 0; i < 2500; ++i) {
        const int64_t now = NowNanos();
        if (next > now)
          std::this_thread::sleep_for(std::chrono::nanoseconds(next - now));
        next += 2200000;
        const int64_t us = 1000 + static_cast<int64_t>(rng.Uniform(4000));
        tickets.push_back(db.Submit(static_cast<int>(rng.Uniform(8)), [us] {
          std::this_thread::sleep_for(std::chrono::microseconds(us));
        }));
      }
      std::vector<int64_t> lat;
      for (auto& t : tickets) {
        t->Wait();
        lat.push_back(t->latency_ns());
      }
      db.Stop();
      settings.push_back({std::to_string(workers) + " workers",
                          core::Metrics::FromLatencies(lat)});
    }
    Recommend("voltmini worker threads", settings,
              "queue wait is ~all of the event-based engine's variance");
  }
  return 0;
}
