// Quickstart: open a mysqlmini database, run transactions through the
// Connection API, and print a predictability report — then switch the lock
// scheduler from FCFS to VATS and watch the tail shrink.
//
//   $ ./build/examples/quickstart
#include <cstdio>
#include <memory>

#include "core/predictability.h"
#include "core/toolkit.h"
#include "engine/factory.h"
#include "engine/txn.h"
#include "workload/driver.h"
#include "workload/tpcc.h"

using namespace tdp;

namespace {

core::Metrics RunWithPolicy(lock::SchedulerPolicy policy) {
  // 1. Configure the engine. Toolkit provides calibrated defaults; every
  //    knob is a plain struct field.
  engine::EngineConfig config;
  config.mysql = core::Toolkit::MysqlDefault(policy);

  // 2. Open the database through the validating factory and load a workload
  //    (a contended TPC-C here; any workload::Workload works, or issue
  //    transactions by hand as below). A bad config — zero buffer pool,
  //    negative spin budget — comes back as InvalidArgument, not a crash.
  auto opened = engine::OpenDatabase(engine::EngineKind::kMySQLMini, config);
  if (!opened.ok()) {
    std::fprintf(stderr, "OpenDatabase: %s\n",
                 opened.status().ToString().c_str());
    std::exit(1);
  }
  std::unique_ptr<engine::Database> db = std::move(opened.value());
  workload::Tpcc tpcc(core::Toolkit::TpccContended());
  tpcc.Load(db.get());

  // 3. One transaction through RunTxn, which owns Begin/Commit/Rollback and
  //    retries deadlock or lock-timeout victims per the RetryPolicy:
  {
    std::unique_ptr<engine::Connection> conn = db->Connect();
    const uint32_t warehouse = db->TableId("warehouse");
    const Status s = engine::RunTxn(
        *conn, engine::RetryPolicy{}, [&](engine::Connection& c) {
          c.Select(warehouse, 0);                // nonlocking read
          return c.Update(warehouse, 0, 0, 100); // X lock + redo
        });
    if (!s.ok()) {
      std::fprintf(stderr, "txn failed: %s (last_error: %s)\n",
                   s.ToString().c_str(),
                   conn->last_error().ToString().c_str());
    }
  }

  // 4. Drive at a constant rate and measure, as the paper does.
  workload::DriverConfig driver = core::Toolkit::DriverDefault();
  driver.num_txns = 3000;
  driver.warmup_txns = 300;
  const workload::RunResult run = RunConstantRate(db.get(), &tpcc, driver);
  return core::Metrics::From(run);
}

}  // namespace

int main() {
  std::printf("running contended TPC-C with FCFS lock scheduling...\n");
  const core::Metrics fcfs = RunWithPolicy(lock::SchedulerPolicy::kFCFS);
  std::printf("  FCFS: %s\n", fcfs.ToString().c_str());

  std::printf("running the same workload with VATS...\n");
  const core::Metrics vats = RunWithPolicy(lock::SchedulerPolicy::kVATS);
  std::printf("  VATS: %s\n", vats.ToString().c_str());

  const core::Ratios r = core::Ratios::Of(fcfs, vats);
  std::printf("\nimprovement from VATS (FCFS/VATS): %s\n",
              r.ToString().c_str());
  std::printf("(run a few times — convoy episodes are bursty; variance and "
              "p99 should favor VATS)\n");
  return 0;
}
