// profile_my_app: using TProfiler on your own code.
//
// Annotate functions with TPROF_SCOPE, mark transactions with TxnScope, and
// let the RefinementDriver decide which subset of functions to instrument in
// each run until the variance tree is informative. Here the "application" is
// a small order-processing routine with a hidden latency-variance culprit
// (a sporadically slow payment gateway).
//
//   $ ./build/examples/profile_my_app
#include <atomic>
#include <cstdio>

#include "common/random.h"
#include "common/work.h"
#include "tprofiler/analysis.h"
#include "tprofiler/refine.h"

using namespace tdp;

namespace {

std::atomic<int> g_order{0};
Rng g_rng(2024);

void ValidateCart() {
  TPROF_SCOPE("validate_cart");
  SpinFor(30000);
}

void ChargeCard() {
  TPROF_SCOPE("charge_card");
  // The culprit: 1 in 8 charges hits a slow fraud-check path.
  SpinFor(g_rng.Uniform(8) == 0 ? 800000 : 60000);
}

void TalkToPaymentGateway() {
  TPROF_SCOPE("payment_gateway");
  SpinFor(20000);
  ChargeCard();
}

void WriteReceipt() {
  TPROF_SCOPE("write_receipt");
  SpinFor(40000);
}

void ProcessOrder() {
  TPROF_SCOPE("process_order");
  ValidateCart();
  TalkToPaymentGateway();
  WriteReceipt();
}

void RunABatchOfOrders() {
  for (int i = 0; i < 200; ++i) {
    g_order.fetch_add(1);
    tprof::TxnScope txn;  // each order is one "transaction"
    ProcessOrder();
  }
}

}  // namespace

int main() {
  std::printf("profiling process_order with iterative refinement...\n\n");

  tprof::RefineConfig cfg;
  cfg.top_k = 3;
  cfg.max_iterations = 8;
  tprof::RefinementDriver driver(cfg);
  tprof::RefineResult result =
      driver.Run({"process_order"}, RunABatchOfOrders);

  std::printf("runs used: %d\n", result.runs_used);
  std::printf("instrumented at the end: ");
  for (const std::string& f : result.instrumented) std::printf("%s ", f.c_str());
  std::printf("\n\n%s\n", result.analysis->ReportString(5).c_str());

  std::printf("variance share per function:\n");
  for (const auto& share : result.analysis->FunctionShares()) {
    std::printf("  %-20s %6.2f%%\n", share.name.c_str(), share.pct_of_total);
  }
  std::printf(
      "\ncharge_card should dominate: that is where the sporadic fraud-check"
      "\nslow path lives. Fix that, not the gateway wrapper above it.\n");
  return 0;
}
